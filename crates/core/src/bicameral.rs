//! Bicameral cycles (Definition 10) and the algorithms that find them
//! (Section 4 / Algorithm 3).
//!
//! ## The scalar reformulation used by the fast engine
//!
//! Write `ΔD = D − Σd(P_i) < 0`, `ΔC = Ĉ − Σc(P_i) > 0` (with `Ĉ` the
//! driver's current optimum estimate), and for a residual cycle `O`
//!
//! ```text
//!     w(O) = ΔC·d(O) − ΔD·c(O).
//! ```
//!
//! Checking the three cases of Definition 10:
//!
//! * type-0 (`d<0, c≤0` or `d≤0, c<0`): both terms are `≤ 0`, one strictly
//!   — so `w(O) < 0`;
//! * type-1 (`d<0, 0<c≤Ĉ`): `d/c ≤ ΔD/ΔC` ⇔ `ΔC·d ≤ ΔD·c` ⇔ `w(O) ≤ 0`;
//! * type-2 (`d≥0, −Ĉ≤c<0`): `d/c ≥ ΔD/ΔC` (multiplying by `c < 0` flips)
//!   ⇔ `w(O) ≤ 0`.
//!
//! Conversely a cycle with `w(O) ≤ 0` that is not the degenerate
//! `(c, d) = (0, 0)` falls into exactly one of the three cases. **Bicameral
//! search is therefore negative-cycle detection under the scalar weight `w`,
//! restricted to cycles with `|c(O)| ≤ Ĉ`** — and the cost restriction is
//! precisely what the layered graphs `H_v^±(B)` of Algorithm 2 encode.
//!
//! ## Engines
//!
//! * [`Engine::Layered`] (default): try plain Bellman–Ford on `G̃` under `w`
//!   first (no cost window — accept if the found cycle happens to respect
//!   the cap); fall back to the combined layered graph with doubling `B`.
//! * [`Engine::LpRounding`] (paper-faithful): Algorithm 3 — per seed `v`
//!   and bound `B`, build `H_v^±(B)`, solve LP (6) with the exact rational
//!   simplex, release the support cycles, select per Algorithm 3's ratio
//!   rule. Exponentially slower; used on small instances and as the oracle
//!   for the fast engine in tests.

use crate::auxgraph::{AuxGraph, Sign};
use krsp_failpoint::fail_point;
use krsp_flow::bellman_ford::{find_negative_cycle_in, BfScratch};
use krsp_flow::cancel::CancelToken;
use krsp_graph::{split_closed_walk, DiGraph, EdgeId, NodeId, ResidualGraph};
use krsp_lp::{LpOutcome, Model, Rat, Relation};
use krsp_numeric::Lex2;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::cell::RefCell;

/// Which bicameral-cycle engine to use.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Engine {
    /// Layered Bellman–Ford under the scalar weight `w` (fast, default).
    #[default]
    Layered,
    /// Algorithm 3 verbatim: per-seed auxiliary graphs + LP (6).
    LpRounding,
}

/// How the cost bound `B` is explored.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum BSearch {
    /// Exponential doubling up to the cap (the paper itself suggests a
    /// search "can be applied here" instead of the full sweep).
    #[default]
    Doubling,
    /// Algorithm 3's literal `B = 1..cap` sweep.
    FullSweep,
}

/// The Definition-10 case a cycle falls into.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CycleKind {
    /// `d(O) < 0, c(O) ≤ 0` (or `d ≤ 0, c < 0`): free improvement.
    Type0,
    /// `d(O) < 0, c(O) > 0`: buys delay with cost.
    Type1,
    /// `d(O) ≥ 0, c(O) < 0`: buys cost with delay.
    Type2,
}

/// A bicameral cycle in the residual graph.
#[derive(Clone, Debug)]
pub struct BicameralCycle {
    /// Residual edge ids (contiguous, closed, edge-disjoint).
    pub edges: Vec<EdgeId>,
    /// `c(O)` (signed).
    pub cost: i64,
    /// `d(O)` (signed).
    pub delay: i64,
    /// Which Definition-10 case applies.
    pub kind: CycleKind,
    /// True when the plain (non-layered) pass found the cycle.
    pub fast_pass: bool,
    /// The layered bound `B` in use when found (`None` for the fast pass).
    pub bound_used: Option<i64>,
}

/// Search context for one iteration of Algorithm 1.
#[derive(Clone, Copy, Debug)]
pub struct Ctx {
    /// `ΔD = D − Σd(P_i)` (strictly negative while the loop runs).
    pub delta_d: i64,
    /// `ΔC = Ĉ − Σc(P_i)` (nonnegative under the Lemma-11 invariant).
    pub delta_c: i64,
    /// Cost cap on acceptable cycles (`Ĉ`; Definition 10's `C_OPT`).
    pub cost_cap: i64,
    /// When false, the cap is ignored — the Figure-1 ablation switch.
    pub enforce_cost_cap: bool,
    /// Restrict the layered passes to cyclic strongly connected components
    /// of the residual graph (sound: every cycle lives inside one SCC).
    /// Ablation switch A4.
    pub scc_prune: bool,
}

impl Ctx {
    /// The scalar weight `w(O)` of a `(cost, delay)` pair.
    #[must_use]
    pub fn w(&self, cost: i64, delay: i64) -> i128 {
        self.delta_c as i128 * delay as i128 - self.delta_d as i128 * cost as i128
    }

    /// Classifies a `(cost, delay)` pair per Definition 10, returning
    /// `None` if the cycle is not bicameral under this context.
    #[must_use]
    pub fn classify(&self, cost: i64, delay: i64) -> Option<CycleKind> {
        if self.enforce_cost_cap && cost.abs() > self.cost_cap {
            return None;
        }
        let w = self.w(cost, delay);
        if w > 0 {
            return None;
        }
        if (delay < 0 && cost <= 0) || (delay <= 0 && cost < 0) {
            return Some(CycleKind::Type0);
        }
        if delay < 0 && cost > 0 {
            // Definition 10 case 2(a): ratio test is exactly w ≤ 0.
            return Some(CycleKind::Type1);
        }
        if delay >= 0 && cost < 0 && w <= 0 {
            return Some(CycleKind::Type2);
        }
        None
    }
}

/// Caller-owned buffers for repeated bicameral searches.
///
/// Algorithm 1 calls [`find`] once per cancellation iteration, and each
/// layered pass inside runs Bellman–Ford under `Lex2` weights; holding one
/// scratch per probe lets all of those share buffers ([`find_with`]).
#[derive(Default)]
pub struct SearchScratch {
    /// Bellman–Ford buffers for the sequential passes 1 and 2.
    bf: BfScratch<Lex2>,
    /// Cooperative-cancellation token polled between search passes and
    /// seeds. Defaults to [`CancelToken::never`].
    cancel: CancelToken,
}

impl SearchScratch {
    /// An empty scratch; buffers are sized lazily on first use.
    #[must_use]
    pub fn new() -> Self {
        SearchScratch::default()
    }

    /// Installs the cancellation token future searches poll; pass
    /// [`CancelToken::never`] to make the scratch uncancellable again.
    pub fn set_cancel(&mut self, cancel: CancelToken) {
        self.cancel = cancel;
    }

    /// The currently installed cancellation token.
    #[must_use]
    pub fn cancel(&self) -> &CancelToken {
        &self.cancel
    }
}

/// Finds a bicameral cycle in `residual` under `ctx`, or `None` when no
/// bicameral cycle exists (Algorithm 1 then declares the instance
/// infeasible / the budget probe failed).
#[must_use]
pub fn find(
    residual: &ResidualGraph,
    ctx: &Ctx,
    engine: Engine,
    b_search: BSearch,
) -> Option<BicameralCycle> {
    find_with(residual, ctx, engine, b_search, &mut SearchScratch::new())
}

/// [`find`] over a caller-owned [`SearchScratch`] — the cancellation loop's
/// entry point, so consecutive iterations reuse the search buffers.
#[must_use]
pub fn find_with(
    residual: &ResidualGraph,
    ctx: &Ctx,
    engine: Engine,
    b_search: BSearch,
    scratch: &mut SearchScratch,
) -> Option<BicameralCycle> {
    // Fault-injection site: fires once per cycle-cancellation iteration,
    // so `delay(..)` here simulates a slow search and `err` a search that
    // finds nothing (stalling the probe).
    fail_point!("bicameral.search", |_msg| None);
    match engine {
        Engine::Layered => layered(residual, ctx, b_search, scratch),
        Engine::LpRounding => lp_rounding(residual, ctx, b_search),
    }
}

// ---------------------------------------------------------------------------
// Fast engine
// ---------------------------------------------------------------------------

/// Evaluates a closed walk: splits it into simple cycles and returns the
/// best bicameral one (Algorithm 3's ratio preference).
fn harvest(
    residual: &ResidualGraph,
    graph: &DiGraph,
    walk: &[EdgeId],
    to_residual: impl Fn(EdgeId) -> EdgeId,
    ctx: &Ctx,
) -> Option<(Vec<EdgeId>, i64, i64, CycleKind)> {
    let mut best: Option<(Vec<EdgeId>, i64, i64, CycleKind, Rat)> = None;
    for piece in split_closed_walk(graph, walk) {
        let res_edges: Vec<EdgeId> = piece.iter().map(|&e| to_residual(e)).collect();
        // Level-graph cycles can traverse the same residual edge at two
        // different levels; such projections are not applicable cycles.
        let mut seen = std::collections::HashSet::new();
        if !res_edges.iter().all(|e| seen.insert(*e)) {
            continue;
        }
        let cost = residual.cost_of(&res_edges);
        let delay = residual.delay_of(&res_edges);
        let Some(kind) = ctx.classify(cost, delay) else {
            continue;
        };
        let score = ratio_score(cost, delay);
        if best.as_ref().is_none_or(|(_, _, _, _, s)| score < *s) {
            best = Some((res_edges, cost, delay, kind, score));
        }
    }
    best.map(|(e, c, d, k, _)| (e, c, d, k))
}

/// Algorithm 3's preference: smaller `|d/c|` for delay-reducing cycles is
/// *better*; encode "more delay reduction per unit cost" as a score where
/// lower is better. Type-0 cycles score best of all.
fn ratio_score(cost: i64, delay: i64) -> Rat {
    if delay < 0 && cost <= 0 {
        // Free: strictly best, ordered by how much delay they remove.
        Rat::int(i128::MIN / 2 - delay as i128)
    } else if cost == 0 {
        Rat::int(i128::MAX / 2)
    } else {
        // d/c for type-1 is negative (lower = steeper delay reduction);
        // for type-2 (c<0, d≥0) d/c ≤ 0 and closer to 0 means cheaper.
        Rat::new(delay as i128, cost as i128)
    }
}

/// A node-remapped subgraph of the residual graph together with the map
/// from its edge ids back to residual edge ids. When pruning is off, the
/// "subgraph" borrows the residual graph itself (no clone) and the edge map
/// is the identity (no allocation).
struct SubResidual<'a> {
    graph: Cow<'a, DiGraph>,
    /// `None` = identity (subgraph ids are residual ids).
    edge_map: Option<Vec<EdgeId>>,
}

impl SubResidual<'_> {
    /// Maps a subgraph edge id back to the residual edge id.
    fn to_residual(&self, e: EdgeId) -> EdgeId {
        match &self.edge_map {
            Some(map) => map[e.index()],
            None => e,
        }
    }
}

/// One subgraph per *cyclic* SCC of the residual graph (or the whole graph
/// as a single "subgraph" when pruning is off). Cycles — hence bicameral
/// cycles — never cross SCC boundaries, so searching the pieces is exact.
fn search_subgraphs(residual: &ResidualGraph, prune: bool) -> Vec<SubResidual<'_>> {
    let rg = residual.graph();
    if !prune {
        return vec![SubResidual {
            graph: Cow::Borrowed(rg),
            edge_map: None,
        }];
    }
    let part = krsp_graph::tarjan_scc(rg);
    let cyclic: std::collections::HashSet<usize> = part.cyclic_components(rg).into_iter().collect();
    let mut subs: Vec<(DiGraph, Vec<EdgeId>)> = Vec::new();
    // Component id → (subgraph index, node remap).
    let mut sub_of: Vec<Option<usize>> = vec![None; part.count];
    let mut node_map: Vec<u32> = vec![u32::MAX; rg.node_count()];
    for v in rg.node_iter() {
        let c = part.component[v.index()];
        if !cyclic.contains(&c) {
            continue;
        }
        let si = *sub_of[c].get_or_insert_with(|| {
            subs.push((DiGraph::new(0), Vec::new()));
            subs.len() - 1
        });
        node_map[v.index()] = subs[si].0.add_node().0;
    }
    for (id, e) in rg.edge_iter() {
        let c = part.component[e.src.index()];
        if cyclic.contains(&c) && part.same(e.src, e.dst) {
            let si = sub_of[c].expect("component registered");
            let (graph, edge_map) = &mut subs[si];
            graph.add_edge(
                krsp_graph::NodeId(node_map[e.src.index()]),
                krsp_graph::NodeId(node_map[e.dst.index()]),
                e.cost,
                e.delay,
            );
            edge_map.push(id);
        }
    }
    subs.into_iter()
        .map(|(graph, edge_map)| SubResidual {
            graph: Cow::Owned(graph),
            edge_map: Some(edge_map),
        })
        .collect()
}

fn layered(
    residual: &ResidualGraph,
    ctx: &Ctx,
    b_search: BSearch,
    scratch: &mut SearchScratch,
) -> Option<BicameralCycle> {
    let rg = residual.graph();

    // Pass 1 — plain negative-cycle detection under w (strict), then under
    // the lexicographic (w, d) to catch w = 0, d < 0 boundary cycles. Both
    // weights are monomorphized closures (no boxed dispatch per relaxation).
    for strict in [true, false] {
        let walk = find_negative_cycle_in(
            rg,
            |e: EdgeId| {
                let r = rg.edge(e);
                let d2 = if strict { 0 } else { r.delay as i128 };
                Lex2::new(ctx.w(r.cost, r.delay), d2)
            },
            &mut scratch.bf,
        );
        if let Some(walk) = walk {
            if let Some((edges, cost, delay, kind)) = harvest(residual, rg, walk, |e| e, ctx) {
                return Some(BicameralCycle {
                    edges,
                    cost,
                    delay,
                    kind,
                    fast_pass: true,
                    bound_used: None,
                });
            }
        }
    }

    // Passes 2 and 3 run per cyclic SCC of the residual graph (every cycle
    // lives inside one), which shrinks the layered constructions massively.
    let subs = search_subgraphs(residual, ctx.scc_prune);

    // Pass 2 — layered search with the cost window enforced structurally.
    let cap = if ctx.enforce_cost_cap {
        ctx.cost_cap.max(1)
    } else {
        rg.edges().iter().map(|e| e.cost.abs()).sum::<i64>().max(1)
    };
    let bounds: Vec<i64> = match b_search {
        BSearch::Doubling => {
            let mut v = Vec::new();
            let mut b = rg
                .edges()
                .iter()
                .map(|e| e.cost.abs())
                .max()
                .unwrap_or(1)
                .max(1);
            while b < cap {
                v.push(b);
                b *= 2;
            }
            v.push(cap);
            v
        }
        BSearch::FullSweep => (1..=cap).collect(),
    };
    for b in &bounds {
        if scratch.cancel.is_cancelled() {
            return None;
        }
        let b = *b;
        for sub in &subs {
            let aux = AuxGraph::combined(&sub.graph, b);
            let ag = &aux.graph;
            let found = find_negative_cycle_in(
                ag,
                |e: EdgeId| {
                    let r = ag.edge(e);
                    Lex2::new(ctx.w(r.cost, r.delay), r.delay as i128)
                },
                &mut scratch.bf,
            );
            if let Some(h_walk) = found {
                let projected = aux.project(h_walk);
                if projected.is_empty() {
                    continue; // pure closing-edge artifact (cannot happen: w=0)
                }
                if let Some((edges, cost, delay, kind)) = harvest(
                    residual,
                    &sub.graph,
                    &projected,
                    |e| sub.to_residual(e),
                    ctx,
                ) {
                    return Some(BicameralCycle {
                        edges,
                        cost,
                        delay,
                        kind,
                        fast_pass: false,
                        bound_used: Some(b),
                    });
                }
            }
        }
    }

    // Pass 3 — completeness fallback over the per-seed graphs.
    if scratch.cancel.is_cancelled() {
        return None;
    }
    seed_scan(residual, &subs, ctx, cap, &scratch.cancel)
}

/// The per-seed layered scan (Algorithm 2's `H_v^±(B)` sweep) at `B =
/// cap`: the completeness fallback of the layered engine. The combined
/// graph's prefix window is `[−B, B]`, so a projected *sub*-cycle can cost
/// up to `2B` and fail the cap even though a cap-respecting cycle exists;
/// the per-seed graphs bound every sub-cycle by `B` structurally (prefix
/// sums live in `[0, B]`), so scanning all seeds at `B = cap` is exact.
///
/// Parallel over `(subgraph, seed, sign)` on the rayon pool, with a
/// deterministic `find_map_first` reduction: the returned cycle is the one
/// from the *lowest seed index*, so the result is bit-identical at any
/// thread count (workers cooperatively cancel seeds past an already-found
/// match). Each worker thread holds its own Bellman–Ford scratch in a
/// thread-local, so a scan allocates per *worker*, not per seed.
fn seed_scan(
    residual: &ResidualGraph,
    subs: &[SubResidual<'_>],
    ctx: &Ctx,
    cap: i64,
    cancel: &CancelToken,
) -> Option<BicameralCycle> {
    // Fault-injection site (see crates/failpoint). Planted on the calling
    // executor thread — before the rayon fan-out — so an injected panic
    // unwinds into the service's catch_unwind boundary, not into a pool
    // worker.
    fail_point!("bicameral.seed");
    thread_local! {
        static SEED_BF: RefCell<BfScratch<Lex2>> = RefCell::new(BfScratch::new());
    }
    let seeds: Vec<(usize, NodeId, Sign)> = subs
        .iter()
        .enumerate()
        .flat_map(|(si, sub)| {
            sub.graph
                .node_iter()
                .flat_map(move |v| [(si, v, Sign::Plus), (si, v, Sign::Minus)])
        })
        .collect();
    seeds.par_iter().find_map_first(|&(si, v, sign)| {
        if cancel.is_cancelled() {
            // Cancellation must not fabricate "no cycle": the caller
            // re-checks the token and discards this None.
            return None;
        }
        let sub = &subs[si];
        let aux = AuxGraph::seeded(&sub.graph, v, cap, sign);
        let ag = &aux.graph;
        SEED_BF.with(|bf| {
            let mut bf = bf.borrow_mut();
            let h_walk = find_negative_cycle_in(
                ag,
                |e: EdgeId| {
                    let r = ag.edge(e);
                    Lex2::new(ctx.w(r.cost, r.delay), r.delay as i128)
                },
                &mut bf,
            )?;
            let projected = aux.project(h_walk);
            if projected.is_empty() {
                return None;
            }
            let (edges, cost, delay, kind) = harvest(
                residual,
                &sub.graph,
                &projected,
                |e| sub.to_residual(e),
                ctx,
            )?;
            Some(BicameralCycle {
                edges,
                cost,
                delay,
                kind,
                fast_pass: false,
                bound_used: Some(cap),
            })
        })
    })
}

/// Benchmark/diagnostic entry point: runs *only* the per-seed layered scan
/// (pass 3 of the fast engine) on `residual` under `ctx`, exactly as the
/// search's completeness fallback would. Exposed so `krsp-bench` can time
/// the parallel seed sweep in isolation across thread counts.
#[doc(hidden)]
#[must_use]
pub fn seed_scan_only(residual: &ResidualGraph, ctx: &Ctx) -> Option<BicameralCycle> {
    let rg = residual.graph();
    let cap = if ctx.enforce_cost_cap {
        ctx.cost_cap.max(1)
    } else {
        rg.edges().iter().map(|e| e.cost.abs()).sum::<i64>().max(1)
    };
    let subs = search_subgraphs(residual, ctx.scc_prune);
    seed_scan(residual, &subs, ctx, cap, &CancelToken::never())
}

// ---------------------------------------------------------------------------
// Paper-faithful LP engine (Algorithm 3)
// ---------------------------------------------------------------------------

/// Solves LP (6) on an auxiliary graph: `min Σ c(e)·x(e)` over circulations
/// with `Σ d(e)·x(e) ≤ ΔD`, `0 ≤ x ≤ 1`. Returns the support cycles of the
/// optimal vertex, projected to residual closed walks.
fn lp6_cycles(aux: &AuxGraph, delta_d: i64) -> Vec<Vec<EdgeId>> {
    let h = &aux.graph;
    let mut model = Model::new();
    let vars: Vec<_> = h
        .edges()
        .iter()
        .map(|e| model.add_var_bounded(Rat::int(e.cost as i128), Rat::ZERO, Some(Rat::ONE)))
        .collect();
    for v in h.node_iter() {
        let mut terms = Vec::new();
        for &e in h.out_edges(v) {
            terms.push((vars[e.index()], Rat::ONE));
        }
        for &e in h.in_edges(v) {
            terms.push((vars[e.index()], -Rat::ONE));
        }
        if !terms.is_empty() {
            model.add_constraint(terms, Relation::Eq, Rat::ZERO);
        }
    }
    model.add_constraint(
        h.edge_iter()
            .map(|(id, e)| (vars[id.index()], Rat::int(e.delay as i128)))
            .collect(),
        Relation::Le,
        Rat::int(delta_d as i128),
    );
    let LpOutcome::Optimal(sol) = krsp_lp::solve(&model) else {
        return Vec::new();
    };

    // Release the support cycles: peel fractional circulation mass.
    let mut x: Vec<Rat> = sol.values;
    let mut cycles_h: Vec<Vec<EdgeId>> = Vec::new();
    while let Some(start) = (0..x.len()).find(|&i| x[i] > Rat::ZERO) {
        // Walk positive-support edges until a node repeats.
        let mut cur = h.edge(EdgeId(start as u32)).src;
        let mut node_pos: Vec<Option<usize>> = vec![None; h.node_count()];
        let mut walk: Vec<EdgeId> = Vec::new();
        node_pos[cur.index()] = Some(0);
        let cycle = loop {
            let e = *h
                .out_edges(cur)
                .iter()
                .find(|&&e| x[e.index()] > Rat::ZERO)
                .expect("conservation keeps the support walkable");
            walk.push(e);
            cur = h.edge(e).dst;
            if let Some(at) = node_pos[cur.index()] {
                break walk.split_off(at);
            }
            node_pos[cur.index()] = Some(walk.len());
        };
        let theta = cycle
            .iter()
            .map(|&e| x[e.index()])
            .min()
            .expect("cycle nonempty");
        for &e in &cycle {
            x[e.index()] = x[e.index()] - theta;
        }
        cycles_h.push(cycle);
        if cycles_h.len() > h.edge_count() {
            break; // safety valve
        }
    }

    cycles_h
        .into_iter()
        .map(|c| aux.project(&c))
        .filter(|p| !p.is_empty())
        .collect()
}

fn lp_rounding(residual: &ResidualGraph, ctx: &Ctx, b_search: BSearch) -> Option<BicameralCycle> {
    let rg = residual.graph();
    let cap = if ctx.enforce_cost_cap {
        ctx.cost_cap.max(1)
    } else {
        rg.edges().iter().map(|e| e.cost.abs()).sum::<i64>().max(1)
    };
    let bounds: Vec<i64> = match b_search {
        BSearch::FullSweep => (1..=cap).collect(),
        BSearch::Doubling => {
            let mut v = Vec::new();
            let mut b = 1;
            while b < cap {
                v.push(b);
                b *= 2;
            }
            v.push(cap);
            v
        }
    };

    let mut best: Option<(BicameralCycle, Rat)> = None;
    for b in bounds {
        // All seeds and both signs, in parallel (rayon): Algorithm 3's
        // "for each v ∈ G̃" loops. `collect` reassembles candidates in
        // seed order, so the selection loop below — and therefore the
        // chosen cycle — is identical at any thread count.
        let seeds: Vec<(NodeId, Sign)> = rg
            .node_iter()
            .flat_map(|v| [(v, Sign::Plus), (v, Sign::Minus)])
            .collect();
        let candidates: Vec<(Vec<EdgeId>, i64, i64, CycleKind, Rat)> = seeds
            .par_iter()
            .flat_map_iter(|&(v, sign)| {
                let aux = AuxGraph::seeded(rg, v, b, sign);
                let walks = lp6_cycles(&aux, ctx.delta_d);
                let mut out = Vec::new();
                for walk in walks {
                    if let Some((edges, cost, delay, kind)) =
                        harvest(residual, rg, &walk, |e| e, ctx)
                    {
                        let score = ratio_score(cost, delay);
                        out.push((edges, cost, delay, kind, score));
                    }
                }
                out
            })
            .collect();
        for (edges, cost, delay, kind, score) in candidates {
            // Algorithm 3 step 1(a)iv: a type-0 cycle ends the search.
            if kind == CycleKind::Type0 {
                return Some(BicameralCycle {
                    edges,
                    cost,
                    delay,
                    kind,
                    fast_pass: false,
                    bound_used: Some(b),
                });
            }
            if best.as_ref().is_none_or(|(_, s)| score < *s) {
                best = Some((
                    BicameralCycle {
                        edges,
                        cost,
                        delay,
                        kind,
                        fast_pass: false,
                        bound_used: Some(b),
                    },
                    score,
                ));
            }
        }
    }
    best.map(|(c, _)| c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use krsp_graph::EdgeSet;

    fn ctx(delta_d: i64, delta_c: i64, cap: i64) -> Ctx {
        Ctx {
            delta_d,
            delta_c,
            cost_cap: cap,
            enforce_cost_cap: true,
            scc_prune: true,
        }
    }

    #[test]
    fn classify_matches_definition_10() {
        let c = ctx(-10, 5, 100);
        // r = ΔD/ΔC = -2.
        assert_eq!(c.classify(-1, -1), Some(CycleKind::Type0));
        assert_eq!(c.classify(0, -1), Some(CycleKind::Type0));
        assert_eq!(c.classify(-1, 0), Some(CycleKind::Type0));
        // type-1: d/c ≤ -2 required.
        assert_eq!(c.classify(1, -2), Some(CycleKind::Type1)); // ratio -2 ✓
        assert_eq!(c.classify(1, -3), Some(CycleKind::Type1)); // ratio -3 ✓
        assert_eq!(c.classify(1, -1), None); // ratio -1 ✗
        assert_eq!(c.classify(2, -3), None); // ratio -1.5 ✗
                                             // type-2: d/c ≥ -2 with c < 0.
        assert_eq!(c.classify(-1, 1), Some(CycleKind::Type2)); // ratio -1 ✓
        assert_eq!(c.classify(-1, 2), Some(CycleKind::Type2)); // ratio -2 ✓
        assert_eq!(c.classify(-1, 3), None); // ratio -3 ✗
                                             // cost cap.
        assert_eq!(c.classify(101, -1000), None);
        assert_eq!(c.classify(-101, 0), None);
        // degenerate zero cycle.
        assert_eq!(c.classify(0, 0), None);
        // positive-positive cycles are never bicameral.
        assert_eq!(c.classify(3, 4), None);
    }

    /// The canonical improvement scenario: expensive-fast solution path can
    /// swap onto a cheap-slow detour and vice versa.
    fn swap_instance() -> (krsp_graph::DiGraph, EdgeSet) {
        let g = krsp_graph::DiGraph::from_edges(
            4,
            &[
                (0, 1, 1, 9), // e0 cheap slow (in solution)
                (1, 3, 1, 9), // e1 cheap slow (in solution)
                (0, 2, 4, 1), // e2 pricey fast
                (2, 3, 4, 1), // e3 pricey fast
                (2, 1, 0, 0), // e4 bridge
            ],
        );
        let sol = EdgeSet::from_edges(g.edge_count(), &[EdgeId(0), EdgeId(1)]);
        (g, sol)
    }

    #[test]
    fn layered_finds_delay_reducing_cycle() {
        let (g, sol) = swap_instance();
        let res = ResidualGraph::build(&g, &sol);
        // Current delay 18, suppose D = 10 → ΔD = −8; Ĉ = 10, cost 2 → ΔC = 8.
        let c = ctx(-8, 8, 10);
        let cyc = find(&res, &c, Engine::Layered, BSearch::Doubling).expect("cycle exists");
        assert!(cyc.delay < 0, "must reduce delay, got {}", cyc.delay);
        assert!(res.is_valid_cycle_set(&cyc.edges));
        // Applying it yields a valid 1-flow with lower delay.
        let mut s2 = sol.clone();
        res.apply(&mut s2, &cyc.edges);
        assert!(s2.is_k_flow(&g, NodeId(0), NodeId(3), 1));
        assert!(s2.total_delay(&g) < sol.total_delay(&g));
    }

    #[test]
    fn lp_engine_agrees_on_existence() {
        let (g, sol) = swap_instance();
        let res = ResidualGraph::build(&g, &sol);
        let c = ctx(-8, 8, 10);
        let fast = find(&res, &c, Engine::Layered, BSearch::Doubling);
        let faithful = find(&res, &c, Engine::LpRounding, BSearch::FullSweep);
        assert!(fast.is_some());
        let f = faithful.expect("LP engine must also find a cycle");
        assert!(f.delay < 0);
        assert!(res.is_valid_cycle_set(&f.edges));
    }

    #[test]
    fn no_cycle_when_filter_too_strict() {
        let (g, sol) = swap_instance();
        let res = ResidualGraph::build(&g, &sol);
        // The only delay-reducing cycle has (c, d) = (6, -16) wait: e2+e4−e0
        // = cost 4+0−1 = 3, delay 1+0−9 = −8 → ratio −8/3.
        // Demand ratio ≤ −10 (ΔD=−100, ΔC=10) and it is rejected.
        let c = ctx(-100, 10, 10);
        assert!(find(&res, &c, Engine::Layered, BSearch::Doubling).is_none());
        assert!(find(&res, &c, Engine::LpRounding, BSearch::FullSweep).is_none());
    }

    #[test]
    fn cost_cap_blocks_expensive_cycles() {
        let (g, sol) = swap_instance();
        let res = ResidualGraph::build(&g, &sol);
        // Full swap costs ≥ 3 per segment; cap 2 forbids everything useful.
        let c = ctx(-8, 8, 2);
        assert!(find(&res, &c, Engine::Layered, BSearch::Doubling).is_none());
        // Without enforcement the cycle reappears (Figure-1 ablation).
        let mut c2 = c;
        c2.enforce_cost_cap = false;
        assert!(find(&res, &c2, Engine::Layered, BSearch::Doubling).is_some());
    }

    /// Definition 10 written out verbatim, as the oracle for `classify`.
    fn definition_10(
        cost: i64,
        delay: i64,
        delta_d: i64,
        delta_c: i64,
        cap: i64,
    ) -> Option<CycleKind> {
        use krsp_numeric::Rat;
        if (delay < 0 && cost <= 0) || (delay <= 0 && cost < 0) {
            // Type 0 — note: Definition 10 states no cost cap for type-0;
            // our classify() applies the cap uniformly (strictly safer for
            // Lemma 11's last-iteration bound), so mirror that here.
            return (cost.abs() <= cap).then_some(CycleKind::Type0);
        }
        let r = Rat::new(delta_d as i128, delta_c as i128);
        let ratio = |c: i64, d: i64| Rat::new(d as i128, c as i128);
        if delay < 0 && cost > 0 && cost <= cap && ratio(cost, delay) <= r {
            return Some(CycleKind::Type1);
        }
        if delay >= 0 && cost < 0 && -cap <= cost && ratio(cost, delay) >= r {
            return Some(CycleKind::Type2);
        }
        None
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(512))]
        /// The scalar reformulation w(O) ≤ 0 used by the fast engine accepts
        /// exactly the cycles of Definition 10.
        #[test]
        fn prop_classify_equals_definition_10(
            cost in -40i64..40,
            delay in -40i64..40,
            delta_d in -60i64..-1,
            delta_c in 1i64..60,
            cap in 1i64..50,
        ) {
            let c = Ctx { delta_d, delta_c, cost_cap: cap, enforce_cost_cap: true, scc_prune: true };
            proptest::prop_assert_eq!(
                c.classify(cost, delay),
                definition_10(cost, delay, delta_d, delta_c, cap),
                "(c,d)=({},{}) ΔD={} ΔC={} cap={}", cost, delay, delta_d, delta_c, cap
            );
        }
    }

    #[test]
    fn type2_cycle_reduces_cost() {
        // Solution uses pricey fast path; a cheap slow alternative exists
        // and delay slack allows trading delay for cost... here ΔD ≥ 0
        // cannot happen inside Algorithm 1's loop, but type-2 cycles are
        // still classified correctly when ΔD < 0 and the ratio is gentle.
        let g = krsp_graph::DiGraph::from_edges(
            4,
            &[
                (0, 1, 9, 1), // in solution (pricey fast)
                (1, 3, 9, 1), // in solution
                (0, 2, 1, 2), // cheap slightly slower
                (2, 3, 1, 2),
                (2, 1, 0, 0),
            ],
        );
        let sol = EdgeSet::from_edges(g.edge_count(), &[EdgeId(0), EdgeId(1)]);
        let res = ResidualGraph::build(&g, &sol);
        // Cycle e2,e4,rev(e0): cost 1−9 = −8, delay 2−1 = +1: type-2 when
        // ratio −1/8 ≥ ΔD/ΔC; take ΔD = −1, ΔC = 20 → r = −1/20.
        // −1/8 ≤ −1/20 → w = 20·1 − (−1)(−8) = 12 > 0 → rejected.
        let c = ctx(-1, 20, 30);
        let got = find(&res, &c, Engine::Layered, BSearch::Doubling);
        if let Some(cyc) = &got {
            assert_ne!(cyc.cost, -8, "the steep type-2 swap must be rejected");
        }
        // With ΔD = −1, ΔC = 4 → r = −1/4; ratio(type2 candidate) = 1/−8 =
        // −1/8 ≥ −1/4 ✓ accepted.
        let c = ctx(-1, 4, 30);
        let cyc = find(&res, &c, Engine::Layered, BSearch::Doubling).expect("type-2 accepted");
        assert_eq!(cyc.kind, CycleKind::Type2);
        assert!(cyc.cost < 0);
    }
}
