//! Baseline algorithms the paper compares against (Related Work, §1.2/§2.1).
//!
//! * [`min_sum`] — Suurballe-style minimum-cost `k` disjoint paths, delay
//!   oblivious ([20, 21]; the polynomially solvable special case).
//! * [`min_delay`] — minimum-delay `k` disjoint paths (the feasibility
//!   certificate; also the urgency-routing strawman).
//! * [`greedy_rsp`] — sequential restricted shortest paths with per-path
//!   budget `D/k` (the folklore heuristic; incomplete by design — it can
//!   report infeasible on feasible instances).
//! * [`orda_sprintson`] — the paper's characterization of [18]: cycle
//!   cancellation in a residual graph whose *reversed edges keep cost 0*
//!   (so costs stay nonnegative) driven by minimum-ratio cycles.
//! * [`lp_rounding_only`] — phase 1 alone, i.e. reference [9]'s `(2, 2)`.

use crate::instance::Instance;
use crate::phase1::{self, Phase1Backend};
use crate::solution::Solution;
use krsp_flow::karp::min_ratio_cycle;
use krsp_flow::{kernel, min_cost_k_flow_fast as min_cost_k_flow, DpScratch, KernelKind};
use krsp_graph::{DiGraph, EdgeId, EdgeSet, ResidualGraph};
use krsp_numeric::Lex2;

/// Minimum-cost `k` disjoint paths, ignoring delay entirely.
///
/// ```
/// use krsp::{baselines, Instance};
/// use krsp_graph::{DiGraph, NodeId};
///
/// let g = DiGraph::from_edges(4, &[
///     (0, 1, 1, 9), (1, 3, 1, 9),   // cheap but slow
///     (0, 2, 5, 1), (2, 3, 5, 1),   // fast but pricey
/// ]);
/// let inst = Instance::new(g, NodeId(0), NodeId(3), 2, 4).unwrap();
/// let sol = baselines::min_sum(&inst).unwrap();
/// assert_eq!(sol.cost, 12);          // both pairs must be used for k=2
/// assert!(sol.delay > inst.delay_bound); // …and the budget is ignored
/// ```
#[must_use]
pub fn min_sum(inst: &Instance) -> Option<Solution> {
    let f = min_cost_k_flow(&inst.graph, inst.s, inst.t, inst.k, |e: EdgeId| {
        let r = inst.graph.edge(e);
        Lex2::new(r.cost as i128, r.delay as i128)
    })?;
    Solution::from_edge_set(inst, f.edges)
}

/// Minimum-delay `k` disjoint paths (ties broken by cost).
#[must_use]
pub fn min_delay(inst: &Instance) -> Option<Solution> {
    let f = min_cost_k_flow(&inst.graph, inst.s, inst.t, inst.k, |e: EdgeId| {
        let r = inst.graph.edge(e);
        Lex2::new(r.delay as i128, r.cost as i128)
    })?;
    Solution::from_edge_set(inst, f.edges)
}

/// Sequential restricted-shortest-path heuristic: route one path at a time
/// with budget `⌊D/k⌋` each (FPTAS with `ε = 1/4` per path), deleting used
/// edges. Returns `None` when any stage fails — which can happen on
/// feasible instances (the heuristic is incomplete; that incompleteness is
/// one of the experiment axes).
#[must_use]
pub fn greedy_rsp(inst: &Instance) -> Option<Solution> {
    greedy_rsp_with_kernel(inst, KernelKind::Classic)
}

/// [`greedy_rsp`] with an explicit [RSP kernel](krsp_flow::RspKernel)
/// backend for the per-path FPTAS stages. `KernelKind::Classic` reproduces
/// [`greedy_rsp`] bit-for-bit; `KernelKind::Interval` gives the same
/// per-path `(1+1/4)` guarantee through the interval-scaling scheme (the
/// stages may pick different — equally certified — paths).
#[must_use]
pub fn greedy_rsp_with_kernel(inst: &Instance, kind: KernelKind) -> Option<Solution> {
    let rsp = kernel(kind);
    let per_path = inst.delay_bound / inst.k as i64;
    let mut remaining = inst.graph.clone();
    let mut chosen: Vec<EdgeId> = Vec::new();
    // Map from the shrinking graph's edges back to original ids.
    let mut back: Vec<EdgeId> = (0..inst.m()).map(|i| EdgeId(i as u32)).collect();
    // One DP arena for all k FPTAS stages.
    let mut scratch = DpScratch::new();
    for _ in 0..inst.k {
        let p = rsp
            .solve_with(&remaining, inst.s, inst.t, per_path, 1, 4, &mut scratch)
            .expect("1/4 is a valid epsilon")?;
        let used: std::collections::HashSet<EdgeId> = p.edges.iter().copied().collect();
        for &e in &p.edges {
            chosen.push(back[e.index()]);
        }
        // Rebuild the graph without the used edges.
        let mut next = DiGraph::new(remaining.node_count());
        let mut next_back = Vec::new();
        for (id, e) in remaining.edge_iter() {
            if !used.contains(&id) {
                next.add_edge(e.src, e.dst, e.cost, e.delay);
                next_back.push(back[id.index()]);
            }
        }
        remaining = next;
        back = next_back;
    }
    let set = EdgeSet::from_edges(inst.m(), &chosen);
    let sol = Solution::from_edge_set(inst, set)?;
    sol.is_delay_feasible(inst).then_some(sol)
}

/// The Orda–Sprintson-style baseline as described in §2.1: start from the
/// min-sum solution; build a residual graph whose reversed edges carry
/// **cost 0** (delay still negated); repeatedly cancel the minimum-ratio
/// cycle `argmin d(O)/c(O)` (computed via Dinkelbach over exact rationals)
/// until the delay budget holds or no delay-reducing cycle remains.
#[must_use]
pub fn orda_sprintson(inst: &Instance) -> Option<Solution> {
    let mut sol = min_sum(inst)?;
    let mut guard = 0usize;
    while sol.delay > inst.delay_bound {
        guard += 1;
        if guard > (inst.graph.total_delay().max(1)) as usize + inst.m() + 8 {
            break; // safety valve; each cycle reduces delay by ≥ 1
        }
        let residual = ResidualGraph::build(&inst.graph, &sol.edges);
        let rg = residual.graph();
        // Their weight model: reversed edges cost 0 (costs stay ≥ 0).
        let cost0 = |e: EdgeId| -> i64 {
            if residual.origin(e).is_reverse() {
                0
            } else {
                rg.edge(e).cost
            }
        };
        let delay_of = |e: EdgeId| rg.edge(e).delay;
        let rc = min_ratio_cycle(rg, delay_of, cost0)?;
        if rc.num >= 0 {
            break; // no delay-reducing cycle left
        }
        // Split into simple cycles, apply the most delay-reducing one.
        let pieces = krsp_graph::split_closed_walk(rg, &rc.edges);
        let best = pieces.into_iter().min_by_key(|p| residual.delay_of(p))?;
        if residual.delay_of(&best) >= 0 {
            break;
        }
        let mut edges = sol.edges.clone();
        residual.apply(&mut edges, &best);
        sol = Solution::from_edge_set(inst, edges)?;
    }
    sol.is_delay_feasible(inst).then_some(sol)
}

/// Practitioner's favourite: enumerate the `K` cheapest simple paths with
/// Yen's algorithm, then greedily scan the ranking for `k` edge-disjoint
/// paths whose total delay fits the budget. Incomplete *and* suboptimal by
/// design (the pool may not contain a disjoint feasible combination at
/// all), but very common in deployed QoS routers — the experiments measure
/// exactly how much it gives away.
#[must_use]
pub fn yen_disjoint(inst: &Instance, pool: usize) -> Option<Solution> {
    let paths = krsp_flow::k_shortest_paths(&inst.graph, inst.s, inst.t, pool, |e| {
        inst.graph.edge(e).cost
    });
    // Greedy scan in cost order; take a path whenever it is edge-disjoint
    // from what we already hold and keeps a feasible delay trajectory.
    let mut used = EdgeSet::with_capacity(inst.m());
    let mut delay = 0i64;
    let mut taken = 0usize;
    for p in &paths {
        if taken == inst.k {
            break;
        }
        if p.edges.iter().any(|&e| used.contains(e)) {
            continue;
        }
        let pd: i64 = p.edges.iter().map(|&e| inst.graph.edge(e).delay).sum();
        if delay + pd > inst.delay_bound {
            continue;
        }
        for &e in &p.edges {
            used.insert(e);
        }
        delay += pd;
        taken += 1;
    }
    if taken < inst.k {
        return None;
    }
    let sol = Solution::from_edge_set(inst, used)?;
    sol.is_delay_feasible(inst).then_some(sol)
}

/// The Min–Max relative ([16], §1.2): `k` disjoint paths minimizing the
/// *longest* path's delay. NP-complete; the classical 2-approximation
/// ([16] via [20, 21]) returns the min-(total-delay) disjoint paths — the
/// longest of which is within 2× of the optimal longest path for `k = 2`.
///
/// Returns `(solution, longest_path_delay)`.
#[must_use]
pub fn min_max_2approx(inst: &Instance) -> Option<(Solution, i64)> {
    let sol = min_delay(inst)?;
    let longest = sol
        .paths(inst)
        .iter()
        .map(krsp_graph::Path::delay)
        .max()
        .unwrap_or(0);
    Some((sol, longest))
}

/// Reference [9] alone: the phase-1 `(2, 2)` LP rounding, reported as-is
/// (its delay may exceed `D` by up to 2×; that is the point of phase 2).
#[must_use]
pub fn lp_rounding_only(inst: &Instance) -> Option<Solution> {
    let p1 = phase1::run(inst, Phase1Backend::Lagrangian).ok()?;
    let mut sol = Solution::from_edge_set(inst, p1.flow)?;
    sol.lower_bound = Some(p1.lp_bound);
    Some(sol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use krsp_graph::NodeId;

    fn tradeoff(d_bound: i64) -> Instance {
        let g = DiGraph::from_edges(
            6,
            &[
                (0, 1, 1, 10),
                (1, 5, 1, 10),
                (0, 2, 8, 1),
                (2, 5, 8, 1),
                (0, 3, 2, 6),
                (3, 5, 2, 6),
                (0, 4, 9, 2),
                (4, 5, 9, 2),
            ],
        );
        Instance::new(g, NodeId(0), NodeId(5), 2, d_bound).unwrap()
    }

    #[test]
    fn min_sum_ignores_delay() {
        let inst = tradeoff(6);
        let sol = min_sum(&inst).unwrap();
        assert_eq!(sol.cost, 6); // cheap + middle
        assert_eq!(sol.delay, 32); // way over budget — by design
    }

    #[test]
    fn min_delay_certifies_feasibility() {
        let inst = tradeoff(6);
        let sol = min_delay(&inst).unwrap();
        assert_eq!(sol.delay, 6); // fast + spare fast
        assert!(sol.is_delay_feasible(&inst));
    }

    #[test]
    fn greedy_respects_budget_when_it_succeeds() {
        let inst = tradeoff(24);
        if let Some(sol) = greedy_rsp(&inst) {
            assert!(sol.delay <= 24);
        }
    }

    #[test]
    fn orda_sprintson_reaches_feasibility() {
        for d in [6, 14, 22, 32] {
            let inst = tradeoff(d);
            let sol = orda_sprintson(&inst).expect("feasible instance");
            assert!(sol.delay <= d, "delay {} > {d}", sol.delay);
        }
    }

    #[test]
    fn min_max_2approx_certifies() {
        let inst = tradeoff(1_000);
        let (sol, longest) = min_max_2approx(&inst).unwrap();
        // min-delay pair is fast(2)+sparefast(4): longest = 4.
        assert_eq!(longest, 4);
        assert_eq!(sol.delay, 6);
        // The 2-approx property vs the exhaustive min-max optimum.
        let mut best_longest = i64::MAX;
        // Enumerate all disjoint pairs in the 4-spoke graph: pairs of
        // distinct spokes i<j with delays {20, 2, 12, 4}.
        let spoke_delays = [20i64, 2, 12, 4];
        for i in 0..4 {
            for j in i + 1..4 {
                best_longest = best_longest.min(spoke_delays[i].max(spoke_delays[j]));
            }
        }
        assert!(longest <= 2 * best_longest);
    }

    #[test]
    fn yen_disjoint_respects_budget_and_disjointness() {
        for d in [6, 14, 22, 32] {
            let inst = tradeoff(d);
            if let Some(sol) = yen_disjoint(&inst, 16) {
                assert!(sol.delay <= d);
                assert!(sol.edges.is_k_flow(&inst.graph, inst.s, inst.t, 2));
            }
        }
        // Generous budget: the two cheapest paths are disjoint here.
        let inst = tradeoff(40);
        let sol = yen_disjoint(&inst, 16).expect("pool contains a pair");
        assert_eq!(sol.cost, 6);
    }

    #[test]
    fn yen_disjoint_can_fail_on_feasible_instances() {
        // Pool of 1 can never host two disjoint paths.
        let inst = tradeoff(40);
        assert!(yen_disjoint(&inst, 1).is_none());
    }

    #[test]
    fn lp_rounding_only_pairing() {
        let inst = tradeoff(14);
        let sol = lp_rounding_only(&inst).unwrap();
        // Lemma 5: delay ≤ 2D and cost ≤ 2·C_LP.
        assert!(sol.delay <= 2 * 14);
        let lb = sol.lower_bound.unwrap();
        assert!(krsp_numeric::Rat::int(sol.cost as i128) <= krsp_numeric::Rat::int(2) * lb);
    }
}
