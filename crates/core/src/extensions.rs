//! Extensions beyond the paper's core statement.
//!
//! * [`solve_vertex_disjoint`] — the *vertex*-disjoint variant via the
//!   classical node-splitting transformation (every internal vertex `v`
//!   becomes `v_in → v_out` with a zero-cost zero-delay gate edge; vertex
//!   disjointness in `G` is edge disjointness in the gated graph).
//! * [`solve_qos`] — the paper's §1 reduction from the per-path-bounded
//!   `k` disjoint QoS path problem (Definition 1) to kRSP (Definition 2):
//!   solve with total budget `k·D` and "route the packages via the k paths
//!   according to their urgency priority", i.e. report paths sorted by
//!   delay so urgent traffic takes the fastest path.

use crate::algorithm1::{solve, Config, SolveError, Solved};
use crate::instance::Instance;
use crate::solution::Solution;
use krsp_graph::{DiGraph, EdgeId, EdgeSet, NodeId, Path};

/// Result of the vertex-disjoint solve: a normal [`Solved`] whose solution
/// is expressed back in the original graph.
pub struct VertexDisjointSolved {
    /// Solution on the *original* graph (vertex-disjoint paths).
    pub solution: Solution,
    /// Statistics from the underlying edge-disjoint solve.
    pub stats: crate::algorithm1::RunStats,
}

/// Solves the vertex-disjoint kRSP variant.
///
/// Internal vertices may appear on at most one path; `s` and `t` are
/// naturally shared. Implemented by node splitting + the edge-disjoint
/// solver, then mapping edges back.
pub fn solve_vertex_disjoint(
    inst: &Instance,
    cfg: &Config,
) -> Result<VertexDisjointSolved, SolveError> {
    let n = inst.n();
    // Split graph: node v -> in = 2v, out = 2v+1; gate edge in→out.
    let mut split = DiGraph::new(2 * n);
    // Gate edges come first: gate of v has edge id v.
    for v in 0..n {
        split.add_edge(NodeId(2 * v as u32), NodeId(2 * v as u32 + 1), 0, 0);
    }
    // Original edge e=(u,v) becomes (u_out, v_in) with id n + e.
    for (_, e) in inst.graph.edge_iter() {
        split.add_edge(
            NodeId(2 * e.src.0 + 1),
            NodeId(2 * e.dst.0),
            e.cost,
            e.delay,
        );
    }
    let split_inst = Instance {
        graph: split,
        s: NodeId(2 * inst.s.0 + 1), // depart from s_out
        t: NodeId(2 * inst.t.0),     // arrive at t_in
        ..inst.clone()
    };
    let solved: Solved = solve(&split_inst, cfg)?;

    // Map back: split edge ids ≥ n correspond to original edge id − n.
    let mut edges = EdgeSet::with_capacity(inst.m());
    for e in solved.solution.edges.iter() {
        if e.index() >= n {
            edges.insert(EdgeId((e.index() - n) as u32));
        }
    }
    let mut solution =
        Solution::from_edge_set(inst, edges).expect("split solution maps to a k-flow");
    solution.lower_bound = solved.solution.lower_bound;
    debug_assert!(vertex_disjoint_ok(inst, &solution));
    Ok(VertexDisjointSolved {
        solution,
        stats: solved.stats,
    })
}

/// Checks that no internal vertex is shared between paths.
#[must_use]
pub fn vertex_disjoint_ok(inst: &Instance, sol: &Solution) -> bool {
    let mut used = vec![false; inst.n()];
    for p in sol.paths(inst) {
        for v in p.nodes(&inst.graph) {
            if v == inst.s || v == inst.t {
                continue;
            }
            if used[v.index()] {
                return false;
            }
            used[v.index()] = true;
        }
    }
    true
}

/// The QoS-path reduction of §1: per-path delay target `per_path_bound`
/// becomes a kRSP instance with total budget `k·per_path_bound`; the
/// returned paths are sorted fastest-first ("urgency priority" routing).
pub struct QosSolved {
    /// Paths sorted by increasing delay (fastest first).
    pub paths: Vec<Path>,
    /// Total cost.
    pub cost: i64,
    /// Total delay (`≤ k · per_path_bound`).
    pub total_delay: i64,
    /// How many of the `k` paths individually meet the per-path bound.
    pub paths_meeting_bound: usize,
}

/// Solves the Definition-1 relaxation via kRSP (Definition 2).
pub fn solve_qos(
    inst_graph: &DiGraph,
    s: NodeId,
    t: NodeId,
    k: usize,
    per_path_bound: i64,
    cfg: &Config,
) -> Result<QosSolved, SolveError> {
    let inst = Instance::new(
        inst_graph.clone(),
        s,
        t,
        k,
        per_path_bound.saturating_mul(k as i64),
    )
    .map_err(|_| SolveError::DelayInfeasible)?;
    let solved = solve(&inst, cfg)?;
    let mut paths = solved.solution.paths(&inst);
    paths.sort_by_key(Path::delay);
    let meeting = paths.iter().filter(|p| p.delay() <= per_path_bound).count();
    Ok(QosSolved {
        cost: solved.solution.cost,
        total_delay: solved.solution.delay,
        paths_meeting_bound: meeting,
        paths,
    })
}

/// Verdict of the kBCP solver.
#[derive(Clone, Debug)]
pub enum KbcpOutcome {
    /// A solution meeting **both** budgets exactly.
    Feasible(Solution),
    /// A solution meeting the delay budget with cost ≤ 2·C (kBCP is a
    /// weaker version of kRSP — §1.2 — so the (1, 2) kRSP guarantee
    /// transfers: if a (C, D)-feasible solution exists, the returned cost
    /// is at most 2·C_OPT(D) ≤ 2·C).
    Bifactor(Solution),
    /// Certificate of infeasibility: even the *fractional* optimum under
    /// delay budget `D` costs more than `C` (LP bound exceeds `C`), or no
    /// fractional solution meets `D` at all.
    Infeasible,
}

/// Solves the `k` disjoint bi-constrained path problem ([12]): `k` disjoint
/// paths with `Σcost ≤ cost_bound` **and** `Σdelay ≤ delay_bound`.
///
/// Implemented exactly as the paper positions it ("all approximations of
/// kRSP can be adopted to solve kBCP"): run the kRSP solver under the delay
/// budget and compare the resulting cost against `cost_bound`.
pub fn solve_kbcp(
    inst_graph: &DiGraph,
    s: NodeId,
    t: NodeId,
    k: usize,
    cost_bound: i64,
    delay_bound: i64,
    cfg: &Config,
) -> KbcpOutcome {
    let Ok(inst) = Instance::new(inst_graph.clone(), s, t, k, delay_bound) else {
        return KbcpOutcome::Infeasible;
    };
    match solve(&inst, cfg) {
        Err(_) => KbcpOutcome::Infeasible,
        Ok(solved) => {
            let sol = solved.solution;
            if sol.cost <= cost_bound {
                return KbcpOutcome::Feasible(sol);
            }
            // The LP bound certifies infeasibility when it already exceeds C.
            if let Some(lb) = sol.lower_bound {
                if lb > krsp_numeric::Rat::int(cost_bound as i128) {
                    return KbcpOutcome::Infeasible;
                }
            }
            KbcpOutcome::Bifactor(sol)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two edge-disjoint routes share the hub vertex 2; a vertex-disjoint
    /// pair must pay for the bypass.
    fn hub_graph() -> DiGraph {
        DiGraph::from_edges(
            6,
            &[
                (0, 1, 1, 1), // s→a
                (1, 2, 1, 1), // a→hub
                (2, 5, 1, 1), // hub→t
                (0, 3, 1, 1), // s→b
                (3, 2, 1, 1), // b→hub
                (2, 5, 1, 1), // hub→t (parallel)
                (3, 4, 5, 5), // b→c  bypass
                (4, 5, 5, 5), // c→t
            ],
        )
    }

    #[test]
    fn vertex_disjoint_avoids_shared_hub() {
        let inst = Instance::new(hub_graph(), NodeId(0), NodeId(5), 2, 100).unwrap();
        // Edge-disjoint optimum routes both paths through the hub (cost 6).
        let edge_sol = solve(&inst, &Config::default()).unwrap();
        assert_eq!(edge_sol.solution.cost, 6);
        assert!(!vertex_disjoint_ok(&inst, &edge_sol.solution));
        // Vertex-disjoint must take the bypass (cost 1+1+1 + 1+5+5 = 14).
        let v = solve_vertex_disjoint(&inst, &Config::default()).unwrap();
        assert!(vertex_disjoint_ok(&inst, &v.solution));
        assert_eq!(v.solution.cost, 14);
    }

    #[test]
    fn vertex_disjoint_respects_delay_budget() {
        let inst = Instance::new(hub_graph(), NodeId(0), NodeId(5), 2, 14).unwrap();
        let v = solve_vertex_disjoint(&inst, &Config::default()).unwrap();
        assert!(v.solution.delay <= 14);
    }

    #[test]
    fn vertex_disjoint_infeasibility() {
        // Only route to t goes through the hub: k=2 vertex-disjoint
        // impossible.
        let g = DiGraph::from_edges(4, &[(0, 1, 1, 1), (0, 1, 1, 1), (1, 3, 1, 1), (1, 3, 1, 1)]);
        let inst = Instance::new(g, NodeId(0), NodeId(3), 2, 100).unwrap();
        assert!(solve(&inst, &Config::default()).is_ok()); // edge-disjoint OK
        assert!(solve_vertex_disjoint(&inst, &Config::default()).is_err());
    }

    #[test]
    fn kbcp_three_verdicts() {
        // Trade-off diamond: cheap-slow pair (6, 32), fast pair (34, 6),
        // mixes in between.
        let g = DiGraph::from_edges(
            6,
            &[
                (0, 1, 1, 10),
                (1, 5, 1, 10),
                (0, 2, 8, 1),
                (2, 5, 8, 1),
                (0, 3, 2, 6),
                (3, 5, 2, 6),
                (0, 4, 9, 2),
                (4, 5, 9, 2),
            ],
        );
        let cfg = Config::default();
        // Generous both: feasible.
        match solve_kbcp(&g, NodeId(0), NodeId(5), 2, 10, 40, &cfg) {
            KbcpOutcome::Feasible(sol) => {
                assert!(sol.cost <= 10 && sol.delay <= 40);
            }
            other => panic!("expected Feasible, got {other:?}"),
        }
        // Impossible pair: min cost at D=6 is 34 > 10; LP bound certifies.
        match solve_kbcp(&g, NodeId(0), NodeId(5), 2, 10, 6, &cfg) {
            KbcpOutcome::Infeasible => {}
            other => panic!("expected Infeasible, got {other:?}"),
        }
        // Delay impossible outright.
        match solve_kbcp(&g, NodeId(0), NodeId(5), 2, 100, 3, &cfg) {
            KbcpOutcome::Infeasible => {}
            other => panic!("expected Infeasible, got {other:?}"),
        }
    }

    #[test]
    fn kbcp_bifactor_band() {
        // Cost bound between C_OPT(D) and the LP bound → Bifactor verdict
        // is allowed; whatever comes back must obey delay and 2·C.
        let g = DiGraph::from_edges(
            6,
            &[
                (0, 1, 1, 10),
                (1, 5, 1, 10),
                (0, 2, 8, 1),
                (2, 5, 8, 1),
                (0, 3, 2, 6),
                (3, 5, 2, 6),
                (0, 4, 9, 2),
                (4, 5, 9, 2),
            ],
        );
        for c_bound in [12i64, 16, 20, 30] {
            match solve_kbcp(&g, NodeId(0), NodeId(5), 2, c_bound, 14, &Config::default()) {
                KbcpOutcome::Feasible(sol) => {
                    assert!(sol.cost <= c_bound && sol.delay <= 14);
                }
                KbcpOutcome::Bifactor(sol) => {
                    assert!(sol.delay <= 14);
                    assert!(sol.cost <= 2 * c_bound);
                }
                KbcpOutcome::Infeasible => {
                    // Must genuinely be infeasible at (c_bound, 14).
                    let inst = Instance::new(g.clone(), NodeId(0), NodeId(5), 2, 14).unwrap();
                    let opt = crate::exact::brute_force(&inst).unwrap();
                    assert!(opt.cost > c_bound, "false infeasibility at C={c_bound}");
                }
            }
        }
    }

    #[test]
    fn qos_sorts_paths_by_delay() {
        let g = DiGraph::from_edges(
            4,
            &[
                (0, 1, 1, 9),
                (1, 3, 1, 9), // slow pair
                (0, 2, 5, 1),
                (2, 3, 5, 1), // fast pair
            ],
        );
        let out = solve_qos(&g, NodeId(0), NodeId(3), 2, 10, &Config::default()).unwrap();
        assert_eq!(out.paths.len(), 2);
        assert!(out.paths[0].delay() <= out.paths[1].delay());
        assert!(out.total_delay <= 20);
        assert!(out.paths_meeting_bound >= 1);
    }
}
