//! Exact kRSP solvers — used to compute `C_OPT` for the approximation-ratio
//! experiments (kRSP is NP-hard, so these are exponential-time tools for
//! small instances only).
//!
//! * [`brute_force`] — enumerates all systems of `k` edge-disjoint simple
//!   `st`-paths by depth-first search.
//! * [`branch_and_bound`] — branches on edge inclusion/exclusion with the
//!   phase-1 Lagrangian LP relaxation as the lower bound; exponentially
//!   faster in practice than enumeration.

use crate::instance::Instance;
use crate::phase1::{self, Phase1Backend};
use crate::solution::Solution;
use krsp_graph::{DiGraph, EdgeId, EdgeSet, NodeId};

/// An exact optimum (cost-minimal among delay-feasible path systems).
#[derive(Clone, Debug)]
pub struct Exact {
    /// The optimal solution.
    pub edges: EdgeSet,
    /// `C_OPT`.
    pub cost: i64,
    /// Its delay (`≤ D`).
    pub delay: i64,
}

impl Exact {
    /// Converts to a [`Solution`].
    #[must_use]
    pub fn into_solution(self, inst: &Instance) -> Solution {
        Solution::from_edge_set(inst, self.edges).expect("exact solution is a k-flow")
    }
}

/// Exhaustive search over systems of `k` edge-disjoint simple paths.
/// Exponential; intended for `m ≲ 30`-edge instances in tests.
#[must_use]
pub fn brute_force(inst: &Instance) -> Option<Exact> {
    let mut used = EdgeSet::with_capacity(inst.m());
    let mut best: Option<Exact> = None;
    search_paths(inst, 0, &mut used, 0, 0, &mut best);
    best
}

fn search_paths(
    inst: &Instance,
    depth: usize,
    used: &mut EdgeSet,
    cost: i64,
    delay: i64,
    best: &mut Option<Exact>,
) {
    if delay > inst.delay_bound {
        return;
    }
    if let Some(b) = best {
        if cost >= b.cost {
            return; // cannot improve
        }
    }
    if depth == inst.k {
        *best = Some(Exact {
            edges: used.clone(),
            cost,
            delay,
        });
        return;
    }
    // Enumerate all simple s→t paths avoiding `used`, recursing per path.
    let mut visited = vec![false; inst.n()];
    visited[inst.s.index()] = true;
    let mut stack: Vec<EdgeId> = Vec::new();
    dfs_paths(
        inst,
        inst.s,
        depth,
        used,
        &mut visited,
        &mut stack,
        cost,
        delay,
        best,
    );
}

#[allow(clippy::too_many_arguments)]
fn dfs_paths(
    inst: &Instance,
    v: NodeId,
    depth: usize,
    used: &mut EdgeSet,
    visited: &mut Vec<bool>,
    stack: &mut Vec<EdgeId>,
    cost: i64,
    delay: i64,
    best: &mut Option<Exact>,
) {
    if delay > inst.delay_bound {
        return;
    }
    if let Some(b) = best {
        if cost >= b.cost {
            return;
        }
    }
    if v == inst.t {
        for &e in stack.iter() {
            used.insert(e);
        }
        search_paths(inst, depth + 1, used, cost, delay, best);
        for &e in stack.iter() {
            used.remove(e);
        }
        return;
    }
    for &e in inst.graph.out_edges(v) {
        if used.contains(e) {
            continue;
        }
        let r = inst.graph.edge(e);
        if visited[r.dst.index()] {
            continue;
        }
        visited[r.dst.index()] = true;
        stack.push(e);
        dfs_paths(
            inst,
            r.dst,
            depth,
            used,
            visited,
            stack,
            cost + r.cost,
            delay + r.delay,
            best,
        );
        stack.pop();
        visited[r.dst.index()] = false;
    }
}

/// Branch-and-bound exact solver.
///
/// Each node carries a set of *removed* edges (excluded from the graph) and
/// a set of *committed* edges (pledged to the solution — never eligible for
/// removal deeper in the subtree). The node is evaluated by phase 1 on the
/// restricted graph: the LP optimum prunes, and the delay-feasible extreme
/// flow `F` is a genuine candidate. Branching picks an undecided edge
/// `e ∈ F` and explores `removed + e` and `committed + e`.
///
/// Completeness: if the subtree's optimum `O` is cheaper than the candidate
/// `F`, then `F ⊄ O` (two `k`-flows whose difference is a forward
/// circulation would put a directed cycle inside the path system `O`), so
/// an undecided branch edge in `F \ O` exists and the `removed` child keeps
/// `O` alive; once all of `F` is committed, `F ⊆ O` forces `F = O`.
#[must_use]
pub fn branch_and_bound(inst: &Instance) -> Option<Exact> {
    let mut incumbent: Option<Exact> = None;
    let mut removed = vec![false; inst.m()];
    let mut committed = vec![false; inst.m()];
    bb(inst, &mut removed, &mut committed, &mut incumbent);
    incumbent
}

fn bb(
    inst: &Instance,
    removed: &mut Vec<bool>,
    committed: &mut Vec<bool>,
    best: &mut Option<Exact>,
) {
    // Build the restricted instance (excluded edges become unusable).
    let g = restricted_graph(&inst.graph, removed);
    let sub = Instance {
        graph: g,
        ..inst.clone()
    };
    let Ok(p1) = phase1::run(&sub, Phase1Backend::Lagrangian) else {
        return; // restricted instance infeasible
    };
    // Prune on the LP bound.
    if let Some(b) = best {
        if p1.lp_bound >= krsp_lp::Rat::int(b.cost as i128) {
            return;
        }
    }
    // The feasible extreme flow is integral and delay-feasible: candidate.
    if best.as_ref().is_none_or(|b| p1.feasible_cost < b.cost) {
        *best = Some(Exact {
            edges: p1.feasible_flow.clone(),
            cost: p1.feasible_cost,
            delay: p1.feasible_delay,
        });
    }
    // LP bound attained by an integral candidate: subtree solved.
    if krsp_lp::Rat::int(p1.feasible_cost as i128) == p1.lp_bound {
        return;
    }
    // Branch on an undecided edge of the candidate flow.
    let branch_edge = (0..inst.m())
        .map(|i| EdgeId(i as u32))
        .find(|&e| !removed[e.index()] && !committed[e.index()] && p1.feasible_flow.contains(e));
    let Some(e) = branch_edge else {
        return; // candidate fully committed: it is the subtree optimum
    };
    removed[e.index()] = true;
    bb(inst, removed, committed, best);
    removed[e.index()] = false;
    committed[e.index()] = true;
    bb(inst, removed, committed, best);
    committed[e.index()] = false;
}

fn restricted_graph(g: &DiGraph, removed: &[bool]) -> DiGraph {
    let mut out = DiGraph::new(g.node_count());
    for (id, e) in g.edge_iter() {
        if removed[id.index()] {
            // Keep edge ids aligned by inserting an unusably expensive
            // self-loop at the source (never on any s-t path).
            out.add_edge(e.src, e.src, 0, 0);
        } else {
            out.add_edge(e.src, e.dst, e.cost, e.delay);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use krsp_graph::{DiGraph, NodeId};

    fn tradeoff(d_bound: i64) -> Instance {
        let g = DiGraph::from_edges(
            6,
            &[
                (0, 1, 1, 10),
                (1, 5, 1, 10),
                (0, 2, 8, 1),
                (2, 5, 8, 1),
                (0, 3, 2, 6),
                (3, 5, 2, 6),
                (0, 4, 9, 2),
                (4, 5, 9, 2),
            ],
        );
        Instance::new(g, NodeId(0), NodeId(5), 2, d_bound).unwrap()
    }

    #[test]
    fn brute_force_picks_cheapest_feasible_mix() {
        // D=32: cheap+middle (cost 6, delay 32) fits exactly.
        let e = brute_force(&tradeoff(32)).unwrap();
        assert_eq!((e.cost, e.delay), (6, 32));
        // D=22: cheap+fast (cost 18, delay 22)? vs middle+fast (20, 14)
        // vs cheap+sparefast (20, 24 > 22) → 18.
        let e = brute_force(&tradeoff(22)).unwrap();
        assert_eq!((e.cost, e.delay), (18, 22));
        // D=6: fast+sparefast (cost 34, delay 6).
        let e = brute_force(&tradeoff(6)).unwrap();
        assert_eq!((e.cost, e.delay), (34, 6));
        // D=5: infeasible.
        assert!(brute_force(&tradeoff(5)).is_none());
    }

    #[test]
    fn bnb_matches_brute_force() {
        for d in [6, 8, 14, 16, 22, 24, 32, 40, 100] {
            let inst = tradeoff(d);
            let bf = brute_force(&inst).map(|e| e.cost);
            let bb = branch_and_bound(&inst).map(|e| e.cost);
            assert_eq!(bf, bb, "mismatch at D={d}");
        }
    }

    #[test]
    fn exact_respects_disjointness() {
        // Shared middle edge makes the naive two cheap paths illegal.
        let g = DiGraph::from_edges(
            4,
            &[
                (0, 1, 1, 1),
                (1, 3, 1, 1),
                (0, 1, 5, 1), // parallel, pricier
                (1, 3, 5, 1),
                (0, 3, 20, 1),
            ],
        );
        let inst = Instance::new(g, NodeId(0), NodeId(3), 2, 10).unwrap();
        let e = brute_force(&inst).unwrap();
        assert_eq!(e.cost, 12); // 1+1 + 5+5
        let bb = branch_and_bound(&inst).unwrap();
        assert_eq!(bb.cost, 12);
    }
}
