//! Phase 1 — the LP-rounding `(2, 2)` algorithm of Lemma 5 (reference [9]).
//!
//! The underlying LP relaxes kRSP to fractional flows:
//!
//! ```text
//!   min Σ c(e)·x(e)
//!   s.t. x is an s→t flow of value k,   Σ d(e)·x(e) ≤ D,   0 ≤ x ≤ 1.
//! ```
//!
//! A basic optimal solution is a convex combination `x* = θ·f₁ + (1−θ)·f₂`
//! of two integral `k`-flows (the optimal vertex lies on an edge of the flow
//! polytope, and flow-polytope edges connect integral flows differing by one
//! cycle). Writing `a_i = d(f_i)/D` and `b_i = c(f_i)/C_LP`, convexity gives
//! `θ(a₁+b₁) + (1−θ)(a₂+b₂) ≤ 2`, so one of the two flows has
//! `a_i + b_i ≤ 2` — i.e. **delay ≤ αD and cost ≤ (2−α)·C_LP ≤ (2−α)·C_OPT**
//! for `α = a_i ∈ [0, 2]`. That is exactly Lemma 5.
//!
//! Two interchangeable backends produce the pair `(f₁, f₂)`:
//!
//! * [`Phase1Backend::Lagrangian`] — discrete Newton (Dinkelbach) on
//!   `L(λ) = min_f c(f) + λ·(d(f) − D)` with exact integer lexicographic
//!   weights; no LP tableau, no floats.
//! * [`Phase1Backend::Simplex`] — build the LP explicitly and solve it with
//!   the exact rational simplex; recover `(f₁, f₂)` from the fractional
//!   cycle of the optimal vertex.
//!
//! Both are cross-checked against each other in the test-suite.

use crate::instance::Instance;
use krsp_flow::{min_cost_k_flow_fast as min_cost_k_flow, McfFlow};
use krsp_graph::{EdgeId, EdgeSet};
use krsp_lp::{LpOutcome, Model, Rat, Relation};
use krsp_numeric::Lex2;
use serde::{Deserialize, Serialize};

/// Which engine computes the phase-1 flow pair.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase1Backend {
    /// Parametric min-cost flow (discrete Newton); the default.
    #[default]
    Lagrangian,
    /// Explicit LP via the exact rational simplex.
    Simplex,
}

/// Result of phase 1.
#[derive(Clone, Debug)]
pub struct Phase1 {
    /// The rounded integral solution (the better of the two extreme flows).
    pub flow: EdgeSet,
    /// Its total cost.
    pub cost: i64,
    /// Its total delay.
    pub delay: i64,
    /// The LP optimum `C_LP ≤ C_OPT` (exact rational).
    pub lp_bound: Rat,
    /// The delay-feasible extreme flow `f₁` (`d(f₁) ≤ D`).
    pub feasible_flow: EdgeSet,
    /// Cost of `f₁`.
    pub feasible_cost: i64,
    /// Delay of `f₁`.
    pub feasible_delay: i64,
    /// Lagrange multiplier at the breakpoint (0 when the min-cost flow is
    /// already delay-feasible).
    pub lambda: Rat,
}

impl Phase1 {
    /// Lemma 5's `α`: `delay/D` of the rounded solution (`None` if `D = 0`).
    #[must_use]
    pub fn alpha(&self, inst: &Instance) -> Option<Rat> {
        (inst.delay_bound != 0).then(|| Rat::new(self.delay as i128, inst.delay_bound as i128))
    }
}

/// Why phase 1 failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase1Error {
    /// Fewer than `k` edge-disjoint paths exist.
    StructurallyInfeasible,
    /// Even the fractional LP cannot meet the delay budget, hence neither
    /// can any integral solution: the kRSP instance is infeasible.
    DelayInfeasible,
}

impl std::fmt::Display for Phase1Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Phase1Error::StructurallyInfeasible => {
                write!(f, "fewer than k edge-disjoint st-paths exist")
            }
            Phase1Error::DelayInfeasible => {
                write!(f, "no fractional k-flow meets the delay budget")
            }
        }
    }
}

impl std::error::Error for Phase1Error {}

/// Runs phase 1 with the chosen backend.
pub fn run(inst: &Instance, backend: Phase1Backend) -> Result<Phase1, Phase1Error> {
    match backend {
        Phase1Backend::Lagrangian => lagrangian(inst),
        Phase1Backend::Simplex => simplex(inst),
    }
}

fn flow_totals(inst: &Instance, edges: &EdgeSet) -> (i64, i64) {
    (
        edges.total_cost(&inst.graph),
        edges.total_delay(&inst.graph),
    )
}

/// Picks the extreme flow minimizing `a + b` (Lemma 5) and assembles the
/// result. `f_lo` must be delay-feasible.
fn assemble(
    inst: &Instance,
    f_lo: EdgeSet,
    f_hi: Option<EdgeSet>,
    lp_bound: Rat,
    lambda: Rat,
) -> Phase1 {
    let (c_lo, d_lo) = flow_totals(inst, &f_lo);
    debug_assert!(d_lo <= inst.delay_bound);
    let pick_hi = match &f_hi {
        None => false,
        Some(fh) => {
            let (c_hi, d_hi) = flow_totals(inst, fh);
            // a + b comparison with exact rationals; D or C_LP may be zero,
            // so compare D·C_LP-scaled: a_i + b_i = d_i/D + c_i/C_LP.
            // Scale by D·C_LP > 0 when both positive; guard the zero cases.
            let score = |c: i64, d: i64| -> Rat {
                let a = if inst.delay_bound == 0 {
                    if d == 0 {
                        Rat::ZERO
                    } else {
                        Rat::int(i128::MAX / 4)
                    }
                } else {
                    Rat::new(d as i128, inst.delay_bound as i128)
                };
                let b = if lp_bound.is_zero() {
                    if c == 0 {
                        Rat::ZERO
                    } else {
                        Rat::int(i128::MAX / 4)
                    }
                } else {
                    Rat::int(c as i128) / lp_bound
                };
                a + b
            };
            score(c_hi, d_hi) < score(c_lo, d_lo)
        }
    };
    let flow = if pick_hi { f_hi.unwrap() } else { f_lo.clone() };
    let (cost, delay) = flow_totals(inst, &flow);
    Phase1 {
        flow,
        cost,
        delay,
        lp_bound,
        feasible_cost: c_lo,
        feasible_delay: d_lo,
        feasible_flow: f_lo,
        lambda,
    }
}

// ---------------------------------------------------------------------------
// Lagrangian backend
// ---------------------------------------------------------------------------

/// Min-`(q·c + p·d, d)` flow — the minimum-delay flow among all flows
/// minimizing the scalarized weight at `λ = p/q`.
fn scalarized_flow(inst: &Instance, p: i128, q: i128) -> Option<McfFlow<Lex2>> {
    min_cost_k_flow(&inst.graph, inst.s, inst.t, inst.k, |e: EdgeId| {
        let r = inst.graph.edge(e);
        Lex2::new(q * r.cost as i128 + p * r.delay as i128, r.delay as i128)
    })
}

/// Same but maximizing delay among weight-optimal flows (secondary `−d`).
/// Only called with `p > 0`, where zero-weight cycles have zero delay and
/// the lexicographic weighting therefore has no negative cycles.
fn scalarized_flow_maxdelay(inst: &Instance, p: i128, q: i128) -> Option<McfFlow<Lex2>> {
    debug_assert!(p > 0);
    min_cost_k_flow(&inst.graph, inst.s, inst.t, inst.k, |e: EdgeId| {
        let r = inst.graph.edge(e);
        Lex2::new(q * r.cost as i128 + p * r.delay as i128, -(r.delay as i128))
    })
}

fn lagrangian(inst: &Instance) -> Result<Phase1, Phase1Error> {
    let d_bound = inst.delay_bound;
    // f_c: min cost, then min delay.
    let f_c = scalarized_flow(inst, 0, 1).ok_or(Phase1Error::StructurallyInfeasible)?;
    let (c_c, d_c) = flow_totals(inst, &f_c.edges);
    if d_c <= d_bound {
        // The min-cost flow is already delay-feasible: LP optimum = c_c,
        // integral, α ≤ 1, β = 1.
        return Ok(assemble(
            inst,
            f_c.edges,
            None,
            Rat::int(c_c as i128),
            Rat::ZERO,
        ));
    }
    // f_d: min delay, then min cost.
    let f_d = min_cost_k_flow(&inst.graph, inst.s, inst.t, inst.k, |e: EdgeId| {
        let r = inst.graph.edge(e);
        Lex2::new(r.delay as i128, r.cost as i128)
    })
    .expect("structural feasibility already established");
    let (c_d, d_d) = flow_totals(inst, &f_d.edges);
    if d_d > d_bound {
        return Err(Phase1Error::DelayInfeasible);
    }

    // Invariant: the `hi` point is cheap but delay-infeasible; the `lo`
    // point is feasible but pricey. (Only the (cost, delay) coordinates are
    // needed to steer the Newton iteration.)
    let (mut c_hi, mut d_hi) = (c_c, d_c);
    let (mut c_lo, mut d_lo) = (c_d, d_d);

    let mut guard = 0usize;
    loop {
        guard += 1;
        assert!(
            guard <= 4 * inst.m() * inst.m() + 64,
            "parametric Newton failed to converge"
        );
        debug_assert!(c_lo > c_hi && d_hi > d_bound && d_lo <= d_bound);
        // λ = Δc/Δd where the two lines cross.
        let p = (c_lo - c_hi) as i128;
        let q = (d_hi - d_lo) as i128;
        debug_assert!(p > 0 && q > 0);
        let w_of = |c: i64, d: i64| q * c as i128 + p * d as i128;
        let w_bracket = w_of(c_lo, d_lo);
        debug_assert_eq!(w_bracket, w_of(c_hi, d_hi));

        let f = scalarized_flow(inst, p, q).expect("feasibility established");
        let (c_f, d_f) = flow_totals(inst, &f.edges);
        let w_f = w_of(c_f, d_f);
        debug_assert!(w_f <= w_bracket);
        if w_f == w_bracket {
            // λ* = p/q is the breakpoint. `f` is the min-delay optimum
            // (d ≤ D); fetch the max-delay optimum for the other extreme.
            let f2 = scalarized_flow_maxdelay(inst, p, q).expect("feasibility established");
            let (c_2, d_2) = flow_totals(inst, &f2.edges);
            debug_assert_eq!(w_of(c_2, d_2), w_bracket);
            debug_assert!(d_f <= d_bound && d_2 >= d_bound);
            let lambda = Rat::new(p, q);
            // LP optimum: L(λ*) = c(f) + λ*(d(f) − D)
            //           = (w(f) − p·D) / q.
            let lp_bound = Rat::new(w_f - p * d_bound as i128, q);
            return Ok(assemble(inst, f.edges, Some(f2.edges), lp_bound, lambda));
        }
        // Strictly better at λ: tighten the bracket on the delay side.
        if d_f > d_bound {
            (c_hi, d_hi) = (c_f, d_f);
        } else {
            (c_lo, d_lo) = (c_f, d_f);
        }
    }
}

// ---------------------------------------------------------------------------
// Simplex backend
// ---------------------------------------------------------------------------

fn simplex(inst: &Instance) -> Result<Phase1, Phase1Error> {
    if !inst.is_structurally_feasible() {
        return Err(Phase1Error::StructurallyInfeasible);
    }
    let g = &inst.graph;
    let mut model = Model::new();
    let vars: Vec<_> = g
        .edges()
        .iter()
        .map(|e| model.add_var_bounded(Rat::int(e.cost as i128), Rat::ZERO, Some(Rat::ONE)))
        .collect();
    // Flow conservation.
    for v in g.node_iter() {
        let mut terms = Vec::new();
        for &e in g.out_edges(v) {
            terms.push((vars[e.index()], Rat::ONE));
        }
        for &e in g.in_edges(v) {
            terms.push((vars[e.index()], -Rat::ONE));
        }
        let rhs = if v == inst.s {
            Rat::int(inst.k as i128)
        } else if v == inst.t {
            -Rat::int(inst.k as i128)
        } else {
            Rat::ZERO
        };
        model.add_constraint(terms, Relation::Eq, rhs);
    }
    // Delay budget.
    model.add_constraint(
        g.edge_iter()
            .map(|(id, e)| (vars[id.index()], Rat::int(e.delay as i128)))
            .collect(),
        Relation::Le,
        Rat::int(inst.delay_bound as i128),
    );

    let sol = match krsp_lp::solve(&model) {
        LpOutcome::Optimal(s) => s,
        LpOutcome::Infeasible => return Err(Phase1Error::DelayInfeasible),
        LpOutcome::Unbounded => unreachable!("bounded 0/1 polytope"),
    };
    let lp_bound = sol.objective;

    // Split the vertex into its two integral endpoint flows.
    let m = g.edge_count();
    let ones: Vec<EdgeId> = (0..m)
        .map(|i| EdgeId(i as u32))
        .filter(|e| sol.values[e.index()] == Rat::ONE)
        .collect();
    let frac: Vec<EdgeId> = (0..m)
        .map(|i| EdgeId(i as u32))
        .filter(|e| {
            let x = sol.values[e.index()];
            x > Rat::ZERO && x < Rat::ONE
        })
        .collect();

    if frac.is_empty() {
        // Integral optimum: feasible and cost-optimal.
        let f = EdgeSet::from_edges(m, &ones);
        debug_assert!(f.is_k_flow(g, inst.s, inst.t, inst.k));
        return Ok(assemble(inst, f, None, lp_bound, Rat::ZERO));
    }

    // The fractional support is a single (undirected) cycle alternating
    // between two direction classes; flipping the classes yields the two
    // integral endpoint flows f₁/f₂ of the polytope edge containing x*.
    // Rather than orienting the cycle explicitly, observe that all
    // fractional variables take one of two values {θ, 1−θ}; the endpoint
    // flows are obtained by rounding one class up and the other down.
    let theta = sol.values[frac[0].index()];
    let class_a: Vec<EdgeId> = frac
        .iter()
        .copied()
        .filter(|e| sol.values[e.index()] == theta)
        .collect();
    let class_b: Vec<EdgeId> = frac
        .iter()
        .copied()
        .filter(|e| sol.values[e.index()] != theta)
        .collect();
    debug_assert!(class_b
        .iter()
        .all(|e| sol.values[e.index()] == Rat::ONE - theta));

    let build = |up: &[EdgeId]| -> Option<EdgeSet> {
        let mut set = EdgeSet::from_edges(m, &ones);
        for &e in up {
            set.insert(e);
        }
        set.is_k_flow(g, inst.s, inst.t, inst.k).then_some(set)
    };
    let (fa, fb) = match (build(&class_a), build(&class_b)) {
        (Some(a), Some(b)) => (a, b),
        // Degenerate vertices (θ = 1−θ = 1/2 merges the classes, or ties in
        // values across classes) can defeat the value-based split; fall back
        // to the Lagrangian pair, which computes the same polytope edge.
        _ => {
            let lag = lagrangian(inst)?;
            debug_assert_eq!(lag.lp_bound, lp_bound);
            return Ok(lag);
        }
    };
    let (_, da) = flow_totals(inst, &fa);
    // Order so that the feasible flow comes first.
    let (f_lo, f_hi) = if da <= inst.delay_bound {
        (fa, fb)
    } else {
        (fb, fa)
    };
    let (_, d_lo) = flow_totals(inst, &f_lo);
    if d_lo > inst.delay_bound {
        // Both endpoints exceed D (possible when the delay row is not tight
        // in the direction we need); fall back to the Lagrangian pairing.
        let lag = lagrangian(inst)?;
        debug_assert_eq!(lag.lp_bound, lp_bound);
        return Ok(lag);
    }
    Ok(assemble(inst, f_lo, Some(f_hi), lp_bound, Rat::ZERO))
}

#[cfg(test)]
mod tests {
    use super::*;
    use krsp_graph::{DiGraph, NodeId};

    /// k=2 diamond with a cost/delay trade-off: cheap-slow pair and
    /// fast-pricey pair; D forces a mix.
    fn tradeoff(d_bound: i64) -> Instance {
        let g = DiGraph::from_edges(
            6,
            &[
                (0, 1, 1, 10),
                (1, 5, 1, 10), // cheap slow: cost 2, delay 20
                (0, 2, 8, 1),
                (2, 5, 8, 1), // fast pricey: cost 16, delay 2
                (0, 3, 2, 6),
                (3, 5, 2, 6), // middle: cost 4, delay 12
                (0, 4, 9, 2),
                (4, 5, 9, 2), // spare fast: cost 18, delay 4
            ],
        );
        Instance::new(g, NodeId(0), NodeId(5), 2, d_bound).unwrap()
    }

    fn check_lemma5(inst: &Instance, p1: &Phase1) {
        // delay ≤ αD and cost ≤ (2−α)·C_LP with α ∈ [0,2].
        let d = Rat::int(p1.delay as i128);
        let c = Rat::int(p1.cost as i128);
        let bound_d = Rat::int(inst.delay_bound as i128);
        if bound_d.is_zero() {
            assert_eq!(p1.delay, 0);
            assert!(c <= Rat::int(2) * p1.lp_bound);
            return;
        }
        let alpha = d / bound_d;
        assert!(alpha <= Rat::int(2), "alpha = {alpha}");
        assert!(
            c <= (Rat::int(2) - alpha) * p1.lp_bound,
            "cost {c} vs (2-{alpha})·{}",
            p1.lp_bound
        );
        // The feasible extreme must actually be feasible.
        assert!(p1.feasible_delay <= inst.delay_bound);
    }

    #[test]
    fn min_cost_already_feasible() {
        let inst = tradeoff(1000);
        let p1 = run(&inst, Phase1Backend::Lagrangian).unwrap();
        assert_eq!(p1.cost, 6); // cheap pair: 2 + 4
        assert_eq!(p1.lp_bound, Rat::int(6));
        assert_eq!(p1.lambda, Rat::ZERO);
        check_lemma5(&inst, &p1);
    }

    #[test]
    fn infeasible_budget_detected() {
        let inst = tradeoff(3); // min possible delay = 2 + 4 = 6
        assert_eq!(
            run(&inst, Phase1Backend::Lagrangian).unwrap_err(),
            Phase1Error::DelayInfeasible
        );
        assert_eq!(
            run(&inst, Phase1Backend::Simplex).unwrap_err(),
            Phase1Error::DelayInfeasible
        );
    }

    #[test]
    fn structurally_infeasible() {
        let g = DiGraph::from_edges(3, &[(0, 1, 1, 1), (1, 2, 1, 1)]);
        let inst = Instance::new(g, NodeId(0), NodeId(2), 2, 100).unwrap();
        assert_eq!(
            run(&inst, Phase1Backend::Lagrangian).unwrap_err(),
            Phase1Error::StructurallyInfeasible
        );
        assert_eq!(
            run(&inst, Phase1Backend::Simplex).unwrap_err(),
            Phase1Error::StructurallyInfeasible
        );
    }

    #[test]
    fn tight_budget_lemma5_holds_both_backends() {
        for d in [6, 8, 14, 16, 22, 24, 32] {
            let inst = tradeoff(d);
            let lag = run(&inst, Phase1Backend::Lagrangian).unwrap();
            check_lemma5(&inst, &lag);
            let sx = run(&inst, Phase1Backend::Simplex).unwrap();
            check_lemma5(&inst, &sx);
            assert_eq!(
                lag.lp_bound, sx.lp_bound,
                "backends disagree on C_LP at D={d}"
            );
        }
    }

    #[test]
    fn lp_bound_is_a_lower_bound() {
        // Exhaustively verify C_LP ≤ C_OPT on the trade-off family.
        for d in [6, 12, 20, 24] {
            let inst = tradeoff(d);
            let p1 = run(&inst, Phase1Backend::Lagrangian).unwrap();
            let opt = crate::exact::brute_force(&inst).expect("feasible");
            assert!(
                p1.lp_bound <= Rat::int(opt.cost as i128),
                "C_LP {} > C_OPT {} at D={d}",
                p1.lp_bound,
                opt.cost
            );
        }
    }
}
