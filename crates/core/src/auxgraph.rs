//! Auxiliary (layered) graphs `H_v⁺(B)` / `H_v⁻(B)` — Algorithm 2.
//!
//! Levels track the *accumulated cost* of a walk through the residual graph
//! `G̃`: node `u^r` means "at `u`, having accumulated cost `r` since the
//! seed". Edges of `G̃` shift the level by their cost; the seed vertex `v`
//! gets zero-delay *closing* edges (`v^i → v^0` in `H⁺`, `v^i → v^B` in
//! `H⁻`) so that cycles through `v` with total cost in `[0, B]`
//! (respectively `[−B, 0]`) correspond to cycles of `H` (Lemma 15).
//!
//! Two constructions are provided:
//!
//! * [`AuxGraph::seeded`] — the paper's per-seed `H_v^±(B)` (used by the
//!   LP-rounding engine of Algorithm 3 and as the test oracle);
//! * [`AuxGraph::combined`] — a single graph covering levels `−B..=B` with
//!   closing edges at *every* vertex; cycles of this graph project to closed
//!   walks of `G̃` whose pieces are cost-bounded, which the fast layered
//!   Bellman–Ford engine filters after projection (see `bicameral`).

use krsp_graph::{DiGraph, EdgeId, NodeId};

/// Sign of the cost window: `Plus` = cycles with cost in `[0, B]`,
/// `Minus` = cycles with cost in `[−B, 0]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sign {
    /// `H_v⁺(B)`.
    Plus,
    /// `H_v⁻(B)`.
    Minus,
}

/// A materialized auxiliary graph with the projection map back to `G̃`.
#[derive(Clone, Debug)]
pub struct AuxGraph {
    /// The layered graph itself.
    pub graph: DiGraph,
    /// For each `H` edge: the residual edge it represents (`None` for
    /// closing edges).
    pub origin: Vec<Option<EdgeId>>,
    /// Number of levels per base vertex.
    levels: usize,
    /// Smallest level value (0 for seeded graphs, `−B` for combined).
    level_min: i64,
}

impl AuxGraph {
    /// Node id of `(base, level)` in the layered graph.
    #[must_use]
    fn node(&self, base: NodeId, level: i64) -> NodeId {
        let l = (level - self.level_min) as usize;
        debug_assert!(l < self.levels);
        NodeId((base.index() * self.levels + l) as u32)
    }

    /// Builds the paper's `H_v^±(B)` for seed `v` (Algorithm 2).
    #[must_use]
    pub fn seeded(g: &DiGraph, v: NodeId, bound: i64, sign: Sign) -> Self {
        assert!(bound >= 1, "cost bound must be at least 1");
        let levels = (bound + 1) as usize;
        let mut aux = AuxGraph {
            graph: DiGraph::new(g.node_count() * levels),
            origin: Vec::new(),
            levels,
            level_min: 0,
        };
        // Cost transitions. In H⁻ the "accumulated" cost runs downward from
        // B, which is the same construction with levels reinterpreted; we
        // keep levels as absolute accumulated cost offset by B for Minus.
        for (id, e) in g.edge_iter() {
            let c = e.cost;
            for r in 0..=bound {
                let r2 = r + c;
                if (0..=bound).contains(&r2) {
                    let a = aux.node(e.src, r);
                    let b = aux.node(e.dst, r2);
                    aux.graph.add_edge(a, b, e.cost, e.delay);
                    aux.origin.push(Some(id));
                }
            }
        }
        // Closing edges at the seed.
        for i in 1..=bound {
            let (from, to) = match sign {
                Sign::Plus => (aux.node(v, i), aux.node(v, 0)),
                // H⁻: start at level B, drift down; close from B−i back up.
                Sign::Minus => (aux.node(v, bound - i), aux.node(v, bound)),
            };
            aux.graph.add_edge(from, to, 0, 0);
            aux.origin.push(None);
        }
        debug_assert_eq!(aux.graph.edge_count(), aux.origin.len());
        aux
    }

    /// Builds the combined layered graph over levels `−B..=B` with closing
    /// edges at every vertex (fast-engine variant).
    #[must_use]
    pub fn combined(g: &DiGraph, bound: i64) -> Self {
        assert!(bound >= 1, "cost bound must be at least 1");
        let levels = (2 * bound + 1) as usize;
        let mut aux = AuxGraph {
            graph: DiGraph::new(g.node_count() * levels),
            origin: Vec::new(),
            levels,
            level_min: -bound,
        };
        for (id, e) in g.edge_iter() {
            let c = e.cost;
            for r in -bound..=bound {
                let r2 = r + c;
                if (-bound..=bound).contains(&r2) {
                    let a = aux.node(e.src, r);
                    let b = aux.node(e.dst, r2);
                    aux.graph.add_edge(a, b, e.cost, e.delay);
                    aux.origin.push(Some(id));
                }
            }
        }
        for v in g.node_iter() {
            for i in -bound..=bound {
                if i != 0 {
                    let from = aux.node(v, i);
                    let to = aux.node(v, 0);
                    aux.graph.add_edge(from, to, 0, 0);
                    aux.origin.push(None);
                }
            }
        }
        debug_assert_eq!(aux.graph.edge_count(), aux.origin.len());
        aux
    }

    /// Projects a cycle of `H` (contiguous closed edge list) down to a
    /// closed walk in `G̃` by dropping closing edges. Contiguity survives
    /// because closing edges keep the base vertex fixed.
    #[must_use]
    pub fn project(&self, cycle: &[EdgeId]) -> Vec<EdgeId> {
        cycle
            .iter()
            .filter_map(|&e| self.origin[e.index()])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use krsp_graph::{EdgeSet, ResidualGraph};

    /// Residual graph of the paper's Figure 2 flavour: one solution path
    /// reversed (negative weights) plus forward alternatives.
    fn residual() -> (krsp_graph::DiGraph, ResidualGraph) {
        let g = krsp_graph::DiGraph::from_edges(
            4,
            &[
                (0, 1, 2, 5), // e0: in solution
                (1, 3, 2, 5), // e1: in solution
                (0, 2, 1, 1), // e2
                (2, 3, 1, 1), // e3
                (2, 1, 3, 0), // e4
            ],
        );
        let sol = EdgeSet::from_edges(g.edge_count(), &[EdgeId(0), EdgeId(1)]);
        let res = ResidualGraph::build(&g, &sol);
        (g, res)
    }

    #[test]
    fn seeded_plus_sizes() {
        let (_, res) = residual();
        let b = 4;
        let aux = AuxGraph::seeded(res.graph(), NodeId(0), b, Sign::Plus);
        assert_eq!(aux.graph.node_count(), 4 * (b as usize + 1));
        // Closing edges present: exactly B of them (origin None).
        let closing = aux.origin.iter().filter(|o| o.is_none()).count();
        assert_eq!(closing, b as usize);
    }

    #[test]
    fn level_transitions_respect_costs() {
        let (_, res) = residual();
        let aux = AuxGraph::seeded(res.graph(), NodeId(0), 3, Sign::Plus);
        // Every non-closing H edge must shift level by its G̃ cost.
        for (id, e) in aux.graph.edge_iter() {
            if let Some(base) = aux.origin[id.index()] {
                let lvl_src = (e.src.index() % aux.levels) as i64;
                let lvl_dst = (e.dst.index() % aux.levels) as i64;
                assert_eq!(lvl_dst - lvl_src, res.graph().edge(base).cost);
            }
        }
    }

    #[test]
    fn projection_drops_closing_edges_only() {
        let (_, res) = residual();
        // Project a hand-built cycle: the residual cycle 0→2 (e2), 2→1
        // (e4), 1→0 (rev e0 with cost −2) has total cost 1+3−2 = 2 and
        // prefix levels up to 4, so bound 5 hosts it.
        let aux = AuxGraph::combined(res.graph(), 5);
        // walk levels: 0 -(e2,c1)-> 1 -(e4,c3)-> 4 -(rev e0,c-2)-> 2, then
        // closing edge at node 0 from level 2 to level 0.
        let find_edge = |from: NodeId, to: NodeId| -> EdgeId {
            aux.graph
                .edge_iter()
                .find(|(_, e)| e.src == from && e.dst == to)
                .map(|(id, _)| id)
                .expect("edge present")
        };
        let lvl = |base: u32, l: i64| aux.node(NodeId(base), l);
        let h_cycle = vec![
            find_edge(lvl(0, 0), lvl(2, 1)),
            find_edge(lvl(2, 1), lvl(1, 4)),
            find_edge(lvl(1, 4), lvl(0, 2)),
            find_edge(lvl(0, 2), lvl(0, 0)), // closing
        ];
        let projected = aux.project(&h_cycle);
        assert_eq!(projected.len(), 3);
        let cost: i64 = projected.iter().map(|&e| res.graph().edge(e).cost).sum();
        assert_eq!(cost, 2);
        // Projection is a contiguous closed walk.
        let rg = res.graph();
        let first = rg.edge(projected[0]).src;
        let mut cur = first;
        for &e in &projected {
            assert_eq!(rg.edge(e).src, cur);
            cur = rg.edge(e).dst;
        }
        assert_eq!(cur, first);
    }

    #[test]
    fn seeded_minus_mirrors_plus() {
        let (_, res) = residual();
        let aux = AuxGraph::seeded(res.graph(), NodeId(1), 4, Sign::Minus);
        // Closing edges go up to level B.
        for (id, e) in aux.graph.edge_iter() {
            if aux.origin[id.index()].is_none() {
                let lvl_dst = (e.dst.index() % aux.levels) as i64;
                assert_eq!(lvl_dst, 4);
                assert_eq!(e.dst.index() / aux.levels, 1);
            }
        }
    }
}
