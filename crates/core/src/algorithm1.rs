//! Algorithm 1 — cycle cancellation with bicameral cycles — and the outer
//! driver that turns it into the `(1, 2)` guarantee of Lemma 3/11 without
//! knowing `C_OPT`.
//!
//! ## The `Ĉ` bisection
//!
//! Definition 10 references `C_OPT`, which the algorithm cannot know. The
//! driver bisects an estimate `Ĉ` over `[⌈C_LP⌉, UB]` (`C_LP` = phase-1 LP
//! optimum, `UB` = cost of the phase-1 delay-feasible extreme flow):
//!
//! * a probe at `Ĉ` runs Algorithm 1 with Definition-10 thresholds wired to
//!   `Ĉ` and *succeeds* if it returns a delay-feasible solution of cost at
//!   most `2·Ĉ`;
//! * every `Ĉ ≥ C_OPT` succeeds (the paper's Lemma 11/Theorem 16 arguments
//!   go through verbatim with `Ĉ ≥ C_OPT`: the existence cycle has ratio
//!   `≤ ΔD/(C_OPT − C_i) ≤ ΔD/(Ĉ − C_i)` and cost within `C_OPT ≤ Ĉ`);
//! * hence bisection terminates at some successful `Ĉ* ≤ C_OPT`, whose
//!   solution costs at most `2·Ĉ* ≤ 2·C_OPT` — the `(1, 2)` bifactor —
//!   at the price of `O(log Σc)` runs of the inner loop.

use crate::bicameral::{self, BSearch, BicameralCycle, Ctx, CycleKind, Engine};
use crate::instance::Instance;
use crate::phase1::{self, Phase1, Phase1Backend, Phase1Error};
use crate::solution::Solution;
use krsp_graph::ResidualGraph;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Solver configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Config {
    /// Phase-1 backend.
    pub phase1_backend: Phase1Backend,
    /// Bicameral-cycle engine.
    pub engine: Engine,
    /// Cost-bound exploration strategy.
    pub b_search: BSearch,
    /// Enforce Definition 10's `|c(O)| ≤ Ĉ` cap (Figure-1 ablation switch).
    pub enforce_cost_cap: bool,
    /// Restrict layered bicameral searches to cyclic SCCs of the residual
    /// graph (sound — cycles never cross SCCs; ablation A4).
    pub scc_pruning: bool,
    /// Hard cap on cycle-cancellation iterations per probe.
    pub max_iterations: usize,
    /// Skip the `Ĉ` bisection and run a single probe at `Ĉ = UB`
    /// (cheaper; keeps delay feasibility but weakens the cost factor).
    pub single_probe: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            phase1_backend: Phase1Backend::Lagrangian,
            engine: Engine::Layered,
            b_search: BSearch::Doubling,
            enforce_cost_cap: true,
            scc_pruning: true,
            max_iterations: 100_000,
            single_probe: false,
        }
    }
}

/// One cycle-cancellation step, for the experiment harness.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IterationStats {
    /// Cycle classification.
    pub kind: CycleKind,
    /// `c(O)`.
    pub cycle_cost: i64,
    /// `d(O)`.
    pub cycle_delay: i64,
    /// Solution cost after applying the cycle.
    pub cost_after: i64,
    /// Solution delay after applying the cycle.
    pub delay_after: i64,
    /// Whether the plain (unlayered) pass found the cycle.
    pub fast_pass: bool,
    /// Layered bound used, when applicable.
    pub bound_used: Option<i64>,
}

/// Aggregate run statistics.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RunStats {
    /// Phase-1 rounded solution cost.
    pub phase1_cost: i64,
    /// Phase-1 rounded solution delay.
    pub phase1_delay: i64,
    /// `C_LP` as a float (exact value kept on the solution).
    pub lp_bound: f64,
    /// Iterations across all probes, in order.
    pub iterations: Vec<IterationStats>,
    /// Number of `Ĉ` probes run.
    pub probes: usize,
    /// Total wall-clock time.
    pub wall: Duration,
    /// Whether a previous-epoch seed participated in this solve (either
    /// accepted outright on its certificate or used to tighten the
    /// bisection). Always `false` for cold solves.
    pub warm_start: bool,
}

/// A solved instance: the solution plus run statistics.
#[derive(Clone, Debug)]
pub struct Solved {
    /// The final solution (delay-feasible; cost ≤ 2·C_OPT under default
    /// configuration).
    pub solution: Solution,
    /// Run statistics.
    pub stats: RunStats,
}

/// Solver failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveError {
    /// Fewer than `k` edge-disjoint paths exist.
    StructurallyInfeasible,
    /// No (even fractional) solution meets the delay budget.
    DelayInfeasible,
    /// The iteration guard tripped on every probe (should not happen on
    /// valid inputs; indicates `max_iterations` too small).
    IterationLimit,
    /// The scratch's [`CancelToken`](krsp_flow::CancelToken) tripped
    /// (deadline expiry or shutdown) before a certified answer was reached.
    /// Never wraps a partial path: callers degrade to a cheaper, completed
    /// method instead.
    Cancelled,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::StructurallyInfeasible => {
                write!(f, "fewer than k edge-disjoint st-paths exist")
            }
            SolveError::DelayInfeasible => write!(f, "delay budget unsatisfiable"),
            SolveError::IterationLimit => write!(f, "iteration limit exhausted"),
            SolveError::Cancelled => write!(f, "solve cancelled before completion"),
        }
    }
}

impl std::error::Error for SolveError {}

impl From<Phase1Error> for SolveError {
    fn from(e: Phase1Error) -> Self {
        match e {
            Phase1Error::StructurallyInfeasible => SolveError::StructurallyInfeasible,
            Phase1Error::DelayInfeasible => SolveError::DelayInfeasible,
        }
    }
}

/// Outcome of one `Ĉ` probe.
struct Probe {
    solution: Solution,
    iterations: Vec<IterationStats>,
}

/// Runs Algorithm 1's cancellation loop with Definition-10 thresholds wired
/// to the estimate `c_hat`. Returns the resulting (delay-feasible) solution
/// or `None` if the loop stalled (no bicameral cycle under this `Ĉ`, or the
/// iteration guard tripped).
fn probe(
    inst: &Instance,
    p1: &Phase1,
    c_hat: i64,
    cfg: &Config,
    scratch: &mut bicameral::SearchScratch,
) -> Option<Probe> {
    let mut edges = p1.flow.clone();
    let mut cost = p1.cost;
    let mut delay = p1.delay;
    let mut iterations = Vec::new();
    // Lemma-12 invariant: r_i = ΔD_i/ΔC_i never decreases (checked in
    // debug builds; both numerator and denominator are tracked exactly).
    let mut last_r: Option<krsp_numeric::Rat> = None;

    while delay > inst.delay_bound {
        if iterations.len() >= cfg.max_iterations || scratch.cancel().is_cancelled() {
            return None;
        }
        let residual = ResidualGraph::build(&inst.graph, &edges);
        let ctx = Ctx {
            delta_d: inst.delay_bound - delay,
            delta_c: (c_hat - cost).max(0),
            cost_cap: c_hat,
            enforce_cost_cap: cfg.enforce_cost_cap,
            scc_prune: cfg.scc_pruning,
        };
        let cyc: BicameralCycle =
            bicameral::find_with(&residual, &ctx, cfg.engine, cfg.b_search, scratch)?;
        debug_assert!(residual.is_valid_cycle_set(&cyc.edges));
        if cfg.enforce_cost_cap && ctx.delta_c > 0 {
            let r = krsp_numeric::Rat::new(ctx.delta_d as i128, ctx.delta_c as i128);
            debug_assert!(
                last_r.is_none_or(|prev| r >= prev),
                "Lemma 12 violated: r decreased from {:?} to {r}",
                last_r
            );
            last_r = Some(r);
        }
        residual.apply(&mut edges, &cyc.edges);
        cost += cyc.cost;
        delay += cyc.delay;
        debug_assert_eq!(cost, edges.total_cost(&inst.graph));
        debug_assert_eq!(delay, edges.total_delay(&inst.graph));
        debug_assert!(edges.is_k_flow(&inst.graph, inst.s, inst.t, inst.k));
        iterations.push(IterationStats {
            kind: cyc.kind,
            cycle_cost: cyc.cost,
            cycle_delay: cyc.delay,
            cost_after: cost,
            delay_after: delay,
            fast_pass: cyc.fast_pass,
            bound_used: cyc.bound_used,
        });
    }
    let solution = Solution::from_edge_set(inst, edges)?;
    debug_assert!(solution.delay <= inst.delay_bound);
    Some(Probe {
        solution,
        iterations,
    })
}

/// Full solver: phase 1, then the `Ĉ`-bisected cycle-cancellation loop.
pub fn solve(inst: &Instance, cfg: &Config) -> Result<Solved, SolveError> {
    solve_with(inst, cfg, &mut bicameral::SearchScratch::new())
}

/// [`solve`] over a caller-owned [`bicameral::SearchScratch`], so repeated
/// solves (the service degradation ladder, experiment sweeps) share the
/// cycle-search buffers.
pub fn solve_with(
    inst: &Instance,
    cfg: &Config,
    scratch: &mut bicameral::SearchScratch,
) -> Result<Solved, SolveError> {
    let start = Instant::now();
    inst.validate().map_err(|_| SolveError::DelayInfeasible)?;
    let p1 = phase1::run(inst, cfg.phase1_backend)?;

    let stats = RunStats {
        phase1_cost: p1.cost,
        phase1_delay: p1.delay,
        lp_bound: p1.lp_bound.to_f64(),
        ..RunStats::default()
    };

    // Already feasible after rounding? Done — cost ≤ 2·C_LP by Lemma 5.
    if p1.delay <= inst.delay_bound {
        let solution =
            Solution::from_edge_set(inst, p1.flow.clone()).expect("phase-1 flow is a valid k-flow");
        return Ok(finish(solution, stats, &p1, start));
    }

    // Fallback feasible answer: the phase-1 feasible extreme (cost UB).
    let fallback = Solution::from_edge_set(inst, p1.feasible_flow.clone())
        .expect("feasible extreme is a valid k-flow");
    drive(inst, &p1, cfg, scratch, fallback, stats, start)
}

/// [`solve_with`] seeded with a previous topology epoch's solution.
///
/// The seed is first **re-verified against the current weights** (flow
/// decomposition, cycle stripping, fresh cost/delay — [`Solution::from_edge_set`]).
/// A seed that no longer decomposes or misses the delay budget is discarded
/// and the call degenerates to a plain [`solve_with`] — **bit-identical to a
/// cold solve**, since everything downstream is deterministic. A verified
/// seed participates two ways:
///
/// * **certificate accept** — when the seed's cost is within the Full rung's
///   own audit bound (`cost ≤ 2·C_LP`, exact rational compare), it already
///   carries the `(1, 2)` guarantee for the *new* epoch, so the whole `Ĉ`
///   bisection is skipped;
/// * **bisection resume** — otherwise the seed is still a feasible solution,
///   hence `cost ≥ C_OPT`, so it soundly tightens the bisection's upper
///   bound and replaces the phase-1 extreme as fallback when cheaper.
///
/// Either way the returned answer satisfies exactly the guarantees of the
/// cold path; `stats.warm_start` records whether the seed was used.
pub fn solve_warm_with(
    inst: &Instance,
    cfg: &Config,
    scratch: &mut bicameral::SearchScratch,
    seed: &krsp_graph::EdgeSet,
) -> Result<Solved, SolveError> {
    let start = Instant::now();
    if inst.validate().is_err() {
        return solve_with(inst, cfg, scratch);
    }
    // A seed sized for a different edge list cannot be from this topology's
    // lineage (weight-only epochs never change the edge count).
    if seed.capacity() != inst.graph.edge_count() {
        return solve_with(inst, cfg, scratch);
    }
    // Re-verify under the current weights; any failure → cold, bit-identical.
    let Some(verified) = Solution::from_edge_set(inst, seed.clone()) else {
        return solve_with(inst, cfg, scratch);
    };
    if verified.delay > inst.delay_bound {
        return solve_with(inst, cfg, scratch);
    }
    let p1 = match phase1::run(inst, cfg.phase1_backend) {
        Ok(p1) => p1,
        Err(_) => return solve_with(inst, cfg, scratch),
    };

    let mut stats = RunStats {
        phase1_cost: p1.cost,
        phase1_delay: p1.delay,
        lp_bound: p1.lp_bound.to_f64(),
        warm_start: true,
        ..RunStats::default()
    };

    // Phase-1 rounding already feasible: the cold path would return it
    // without probing — do exactly that (the seed played no role).
    if p1.delay <= inst.delay_bound {
        stats.warm_start = false;
        let solution =
            Solution::from_edge_set(inst, p1.flow.clone()).expect("phase-1 flow is a valid k-flow");
        return Ok(finish(solution, stats, &p1, start));
    }

    // Certificate accept: the seed meets the Full rung's audit bound under
    // the *new* weights, so it is a certified answer as-is.
    if krsp_numeric::Rat::int(verified.cost as i128) <= krsp_numeric::Rat::int(2) * p1.lp_bound {
        return Ok(finish(verified, stats, &p1, start));
    }

    // Bisection resume: the seed is feasible, so seed.cost ≥ C_OPT makes it
    // a sound (possibly tighter) upper bound and fallback.
    let extreme = Solution::from_edge_set(inst, p1.feasible_flow.clone())
        .expect("feasible extreme is a valid k-flow");
    let fallback = if verified.cost < extreme.cost {
        verified
    } else {
        extreme
    };
    drive(inst, &p1, cfg, scratch, fallback, stats, start)
}

/// Stamps the LP lower bound and wall time onto a finished solve.
fn finish(mut solution: Solution, mut stats: RunStats, p1: &Phase1, start: Instant) -> Solved {
    solution.lower_bound = Some(p1.lp_bound);
    stats.wall = start.elapsed();
    Solved { solution, stats }
}

/// The `Ĉ`-bisected cancellation tail shared by [`solve_with`] and
/// [`solve_warm_with`]: `fallback` is a delay-feasible solution whose cost
/// upper-bounds `C_OPT` (the phase-1 extreme on the cold path, possibly a
/// cheaper re-verified seed on the warm path).
fn drive(
    inst: &Instance,
    p1: &Phase1,
    cfg: &Config,
    scratch: &mut bicameral::SearchScratch,
    fallback: Solution,
    mut stats: RunStats,
    start: Instant,
) -> Result<Solved, SolveError> {
    let ub = fallback.cost;
    let lb = p1.lp_bound.ceil().max(0) as i64;

    // Cancellation contract: a tripped token turns probe stalls into
    // `Err(Cancelled)` instead of shipping the fallback — the fallback's
    // cost certificate is only meaningful when the probes genuinely failed,
    // and the degradation ladder above substitutes a *completed* cheaper
    // method on cancellation.
    let cancel = scratch.cancel().clone();

    if cfg.single_probe {
        stats.probes = 1;
        return match probe(inst, p1, ub.max(1), cfg, scratch) {
            Some(pr) => {
                stats.iterations = pr.iterations;
                Ok(finish(pr.solution, stats, p1, start))
            }
            None if cancel.is_cancelled() => Err(SolveError::Cancelled),
            None => Ok(finish(fallback, stats, p1, start)),
        };
    }

    // Bisection on Ĉ (see module docs). `hi` always holds a success.
    let mut best: Option<Probe> = None;
    let (mut lo, mut hi) = (lb.max(1), ub.max(1));
    // Establish success at hi = UB: guaranteed since UB ≥ C_OPT.
    loop {
        if cancel.is_cancelled() {
            return Err(SolveError::Cancelled);
        }
        stats.probes += 1;
        match probe(inst, p1, hi, cfg, scratch) {
            Some(pr) if pr.solution.cost <= 2 * hi => {
                best = Some(pr);
                break;
            }
            _ => {
                // UB ≥ C_OPT should always succeed; an iteration-limit trip
                // is the only legitimate reason to land here.
                if stats.probes > 1 {
                    break;
                }
                stats.iterations.clear();
                if hi >= i64::MAX / 4 {
                    break;
                }
                hi *= 2; // pathological; widen once then give up
            }
        }
    }
    if best.is_none() {
        if cancel.is_cancelled() {
            return Err(SolveError::Cancelled);
        }
        // Fall back to the feasible extreme (valid (1, 2−α·…) anyway).
        stats.wall = start.elapsed();
        return Ok(finish(fallback, stats, p1, start));
    }
    while lo < hi {
        if cancel.is_cancelled() {
            return Err(SolveError::Cancelled);
        }
        let mid = lo + (hi - lo) / 2;
        stats.probes += 1;
        match probe(inst, p1, mid, cfg, scratch) {
            Some(pr) if pr.solution.cost <= 2 * mid => {
                hi = mid;
                best = Some(pr);
            }
            _ => lo = mid + 1,
        }
    }
    let pr = best.expect("bisection keeps a success");
    // Keep the cheaper of the probe result and the fallback.
    let solution = if fallback.cost < pr.solution.cost {
        fallback
    } else {
        stats.iterations = pr.iterations;
        pr.solution
    };
    Ok(finish(solution, stats, p1, start))
}

#[cfg(test)]
mod tests {
    use super::*;
    use krsp_graph::{DiGraph, NodeId};

    fn tradeoff(d_bound: i64) -> Instance {
        let g = DiGraph::from_edges(
            6,
            &[
                (0, 1, 1, 10),
                (1, 5, 1, 10), // cheap slow: (2, 20)
                (0, 2, 8, 1),
                (2, 5, 8, 1), // fast pricey: (16, 2)
                (0, 3, 2, 6),
                (3, 5, 2, 6), // middle: (4, 12)
                (0, 4, 9, 2),
                (4, 5, 9, 2), // spare fast: (18, 4)
            ],
        );
        Instance::new(g, NodeId(0), NodeId(5), 2, d_bound).unwrap()
    }

    #[test]
    fn guarantee_holds_across_budgets() {
        for d in [6, 8, 14, 16, 22, 24, 32, 40] {
            let inst = tradeoff(d);
            let solved = solve(&inst, &Config::default()).unwrap();
            let opt = crate::exact::brute_force(&inst).unwrap();
            assert!(
                solved.solution.delay <= d,
                "delay violated at D={d}: {}",
                solved.solution.delay
            );
            assert!(
                solved.solution.cost <= 2 * opt.cost,
                "cost {} > 2·C_OPT {} at D={d}",
                solved.solution.cost,
                opt.cost
            );
        }
    }

    #[test]
    fn infeasible_reported() {
        let inst = tradeoff(5);
        assert_eq!(
            solve(&inst, &Config::default()).unwrap_err(),
            SolveError::DelayInfeasible
        );
    }

    #[test]
    fn single_probe_mode_is_feasible() {
        for d in [6, 14, 22, 32] {
            let inst = tradeoff(d);
            let cfg = Config {
                single_probe: true,
                ..Config::default()
            };
            let solved = solve(&inst, &cfg).unwrap();
            assert!(solved.solution.delay <= d);
        }
    }

    #[test]
    fn lp_engine_end_to_end() {
        let inst = tradeoff(22);
        let cfg = Config {
            engine: Engine::LpRounding,
            b_search: BSearch::FullSweep,
            single_probe: true,
            ..Config::default()
        };
        let solved = solve(&inst, &cfg).unwrap();
        assert!(solved.solution.delay <= 22);
        let opt = crate::exact::brute_force(&inst).unwrap();
        assert!(solved.solution.cost <= 2 * opt.cost);
    }

    #[test]
    fn warm_start_accepts_certified_seed_and_matches_guarantee() {
        let cfg = Config::default();
        for d in [6, 14, 22, 32] {
            let inst = tradeoff(d);
            let cold = solve(&inst, &cfg).unwrap();
            // Seed the same instance with its own cold solution: trivially
            // verified and certified, so the warm path must accept it.
            let warm = solve_warm_with(
                &inst,
                &cfg,
                &mut bicameral::SearchScratch::new(),
                &cold.solution.edges,
            )
            .unwrap();
            assert!(warm.solution.delay <= d);
            assert_eq!(warm.solution.cost, cold.solution.cost);
            assert_eq!(warm.solution.lower_bound, cold.solution.lower_bound);
            // When the bisection would have run, the seed skips it.
            if cold.stats.probes > 0 {
                assert!(warm.stats.warm_start);
                assert_eq!(warm.stats.probes, 0);
            }
        }
    }

    #[test]
    fn warm_start_bad_seed_is_bit_identical_to_cold() {
        let cfg = Config::default();
        let inst = tradeoff(14);
        let cold = solve(&inst, &cfg).unwrap();
        // An empty edge set is not a k-flow: verification fails, the call
        // must degenerate to the cold solve exactly.
        let warm = solve_warm_with(
            &inst,
            &cfg,
            &mut bicameral::SearchScratch::new(),
            &krsp_graph::EdgeSet::default(),
        )
        .unwrap();
        assert_eq!(warm.solution.edges, cold.solution.edges);
        assert_eq!(warm.solution.cost, cold.solution.cost);
        assert_eq!(warm.solution.delay, cold.solution.delay);
        assert!(!warm.stats.warm_start);
        assert_eq!(warm.stats.probes, cold.stats.probes);
    }

    #[test]
    fn warm_start_stale_seed_after_weight_bump_stays_sound() {
        // Solve at one epoch, bump the cost of an edge on the solution's
        // cheap leg, re-solve warm on the next epoch: the answer must carry
        // the same guarantee as a cold solve on the new instance.
        let cfg = Config::default();
        let inst = tradeoff(22);
        let cold0 = solve(&inst, &cfg).unwrap();
        let g1 = inst.graph.with_updates(&[(krsp_graph::EdgeId(0), 50, 10)]);
        let inst1 = Instance::new(g1, inst.s, inst.t, inst.k, inst.delay_bound).unwrap();
        let warm = solve_warm_with(
            &inst1,
            &cfg,
            &mut bicameral::SearchScratch::new(),
            &cold0.solution.edges,
        )
        .unwrap();
        let cold1 = solve(&inst1, &cfg).unwrap();
        let opt = crate::exact::brute_force(&inst1).unwrap();
        assert!(warm.solution.delay <= inst1.delay_bound);
        assert!(warm.solution.cost <= 2 * opt.cost);
        assert!(cold1.solution.cost <= 2 * opt.cost);
    }

    #[test]
    fn stats_are_recorded() {
        let inst = tradeoff(14);
        let solved = solve(&inst, &Config::default()).unwrap();
        assert!(solved.stats.lp_bound > 0.0);
        assert!(
            solved.stats.probes >= 1
                || !solved.stats.iterations.is_empty()
                || solved.stats.phase1_delay <= 14
        );
    }
}
