//! Independent solution auditing.
//!
//! A downstream system acting on a provisioning decision should not have to
//! trust the solver: [`audit`] re-derives every property of a claimed
//! solution from first principles (structure, disjointness, budgets, and —
//! when a bound is supplied — the cost guarantee), using only the graph
//! and elementary checks. The test-suite and the experiment harness run it
//! on every output; it is `O(m + n)`.

use crate::instance::Instance;
use crate::solution::Solution;
use krsp_graph::decompose;
use krsp_numeric::Rat;

/// Everything that can be wrong with a claimed solution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// The edge set is not a `k`-unit `st`-flow.
    NotAFlow,
    /// Decomposition produced cycles (a path system must have none).
    ContainsCycles,
    /// Recorded cost differs from the recomputed cost.
    CostMismatch {
        /// Value stored on the solution.
        recorded: i64,
        /// Value recomputed from the graph.
        actual: i64,
    },
    /// Recorded delay differs from the recomputed delay.
    DelayMismatch {
        /// Value stored on the solution.
        recorded: i64,
        /// Value recomputed from the graph.
        actual: i64,
    },
    /// Total delay exceeds the instance budget.
    DelayBudgetExceeded {
        /// Recomputed delay.
        delay: i64,
        /// The instance budget.
        bound: i64,
    },
    /// Cost exceeds `factor ×` the supplied reference bound.
    CostGuaranteeExceeded {
        /// Recomputed cost.
        cost: i64,
        /// The reference bound (e.g. `C_OPT` or the LP bound).
        reference: Rat,
        /// The allowed factor.
        factor: u32,
    },
}

/// Audits `sol` against `inst`. When `cost_reference` is given (an exact
/// optimum or any lower bound on it), additionally checks the
/// `cost ≤ factor·reference` guarantee. Returns all violations found.
#[must_use]
pub fn audit(
    inst: &Instance,
    sol: &Solution,
    cost_reference: Option<(Rat, u32)>,
) -> Vec<Violation> {
    let mut out = Vec::new();
    match decompose(&inst.graph, &sol.edges, inst.s, inst.t, inst.k) {
        Err(_) => {
            out.push(Violation::NotAFlow);
            return out; // nothing else is meaningful
        }
        Ok(d) => {
            if !d.cycles.is_empty() {
                out.push(Violation::ContainsCycles);
            }
            let actual_cost = d.path_cost();
            let actual_delay = d.path_delay();
            if actual_cost != sol.cost {
                out.push(Violation::CostMismatch {
                    recorded: sol.cost,
                    actual: actual_cost,
                });
            }
            if actual_delay != sol.delay {
                out.push(Violation::DelayMismatch {
                    recorded: sol.delay,
                    actual: actual_delay,
                });
            }
            if actual_delay > inst.delay_bound {
                out.push(Violation::DelayBudgetExceeded {
                    delay: actual_delay,
                    bound: inst.delay_bound,
                });
            }
            if let Some((reference, factor)) = cost_reference {
                if Rat::int(actual_cost as i128) > Rat::int(i128::from(factor)) * reference {
                    out.push(Violation::CostGuaranteeExceeded {
                        cost: actual_cost,
                        reference,
                        factor,
                    });
                }
            }
        }
    }
    out
}

/// Convenience: audit and panic with a readable report on any violation.
/// Used liberally by the test-suite.
pub fn assert_valid(inst: &Instance, sol: &Solution, cost_reference: Option<(Rat, u32)>) {
    let violations = audit(inst, sol, cost_reference);
    assert!(
        violations.is_empty(),
        "solution audit failed: {violations:?}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm1::{solve, Config};
    use krsp_graph::{DiGraph, EdgeId, EdgeSet, NodeId};

    fn inst() -> Instance {
        let g = DiGraph::from_edges(4, &[(0, 1, 1, 2), (1, 3, 1, 2), (0, 2, 3, 4), (2, 3, 3, 4)]);
        Instance::new(g, NodeId(0), NodeId(3), 2, 12).unwrap()
    }

    #[test]
    fn clean_solution_passes() {
        let i = inst();
        let out = solve(&i, &Config::default()).unwrap();
        assert_valid(&i, &out.solution, None);
        // With the solver's own LP bound and factor 2.
        let lb = out.solution.lower_bound.unwrap();
        assert_valid(&i, &out.solution, Some((lb, 2)));
    }

    #[test]
    fn detects_broken_structure() {
        let i = inst();
        let sol = Solution {
            edges: EdgeSet::from_edges(4, &[EdgeId(0)]),
            cost: 1,
            delay: 2,
            lower_bound: None,
        };
        assert_eq!(audit(&i, &sol, None), vec![Violation::NotAFlow]);
    }

    #[test]
    fn detects_bookkeeping_mismatches() {
        let i = inst();
        let sol = Solution {
            edges: EdgeSet::from_edges(4, &[EdgeId(0), EdgeId(1), EdgeId(2), EdgeId(3)]),
            cost: 7,   // actually 8
            delay: 11, // actually 12
            lower_bound: None,
        };
        let v = audit(&i, &sol, None);
        assert!(v.contains(&Violation::CostMismatch {
            recorded: 7,
            actual: 8
        }));
        assert!(v.contains(&Violation::DelayMismatch {
            recorded: 11,
            actual: 12
        }));
    }

    #[test]
    fn detects_budget_and_guarantee_violations() {
        let mut i = inst();
        i.delay_bound = 10; // actual delay is 12
        let sol = Solution {
            edges: EdgeSet::from_edges(4, &[EdgeId(0), EdgeId(1), EdgeId(2), EdgeId(3)]),
            cost: 8,
            delay: 12,
            lower_bound: None,
        };
        let v = audit(&i, &sol, Some((Rat::int(3), 2)));
        assert!(v.contains(&Violation::DelayBudgetExceeded {
            delay: 12,
            bound: 10
        }));
        assert!(v.contains(&Violation::CostGuaranteeExceeded {
            cost: 8,
            reference: Rat::int(3),
            factor: 2
        }));
    }

    #[test]
    #[should_panic(expected = "audit failed")]
    fn assert_valid_panics_on_violation() {
        let i = inst();
        let sol = Solution {
            edges: EdgeSet::from_edges(4, &[EdgeId(0)]),
            cost: 1,
            delay: 2,
            lower_bound: None,
        };
        assert_valid(&i, &sol, None);
    }
}
