//! kRSP solutions and quality accounting.

use crate::instance::Instance;
use krsp_graph::{decompose, EdgeSet, Path};
use krsp_numeric::Rat;
use serde::{Deserialize, Serialize};

/// A candidate solution: `k` edge-disjoint `st`-paths.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Solution {
    /// The solution as a `k`-unit flow edge set.
    pub edges: EdgeSet,
    /// Total cost `Σ c(P_i)`.
    pub cost: i64,
    /// Total delay `Σ d(P_i)`.
    pub delay: i64,
    /// A lower bound on `C_OPT` certified during solving (the phase-1 LP
    /// optimum `C_LP`), when available.
    pub lower_bound: Option<Rat>,
}

impl Solution {
    /// Builds a solution from a flow edge set, verifying the `k`-flow
    /// structure and computing totals. Strips any zero-flow cycles present
    /// in the set (cycles never reduce delay since delays are nonnegative).
    #[must_use]
    pub fn from_edge_set(inst: &Instance, edges: EdgeSet) -> Option<Self> {
        let d = decompose(&inst.graph, &edges, inst.s, inst.t, inst.k).ok()?;
        // Keep only path edges: cycles in a min-cost context only ever add
        // cost/delay, and Definition 2 asks for paths.
        let mut clean = EdgeSet::with_capacity(inst.graph.edge_count());
        for p in &d.paths {
            for &e in p.edges() {
                clean.insert(e);
            }
        }
        Some(Solution {
            cost: d.path_cost(),
            delay: d.path_delay(),
            edges: clean,
            lower_bound: None,
        })
    }

    /// The explicit `k` disjoint paths of this solution.
    #[must_use]
    pub fn paths(&self, inst: &Instance) -> Vec<Path> {
        decompose(&inst.graph, &self.edges, inst.s, inst.t, inst.k)
            .expect("solution is a valid k-flow")
            .paths
    }

    /// `delay / D` — the delay bifactor component `α` (`None` if `D = 0`).
    #[must_use]
    pub fn delay_factor(&self, inst: &Instance) -> Option<Rat> {
        (inst.delay_bound != 0).then(|| Rat::new(self.delay as i128, inst.delay_bound as i128))
    }

    /// True iff the delay budget is respected.
    #[must_use]
    pub fn is_delay_feasible(&self, inst: &Instance) -> bool {
        self.delay <= inst.delay_bound
    }

    /// `cost / lower_bound` — an upper bound on the cost bifactor `β`
    /// (`None` without a recorded lower bound or with a zero bound).
    #[must_use]
    pub fn cost_factor(&self) -> Option<Rat> {
        let lb = self.lower_bound?;
        (!lb.is_zero()).then(|| Rat::int(self.cost as i128) / lb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use krsp_graph::{DiGraph, EdgeId, NodeId};

    fn inst() -> Instance {
        let g = DiGraph::from_edges(4, &[(0, 1, 1, 2), (1, 3, 1, 2), (0, 2, 3, 4), (2, 3, 3, 4)]);
        Instance::new(g, NodeId(0), NodeId(3), 2, 12).unwrap()
    }

    #[test]
    fn from_edge_set_totals() {
        let i = inst();
        let set = EdgeSet::from_edges(4, &[EdgeId(0), EdgeId(1), EdgeId(2), EdgeId(3)]);
        let sol = Solution::from_edge_set(&i, set).unwrap();
        assert_eq!(sol.cost, 8);
        assert_eq!(sol.delay, 12);
        assert!(sol.is_delay_feasible(&i));
        assert_eq!(sol.delay_factor(&i), Some(Rat::ONE));
        assert_eq!(sol.paths(&i).len(), 2);
    }

    #[test]
    fn invalid_set_rejected() {
        let i = inst();
        let set = EdgeSet::from_edges(4, &[EdgeId(0), EdgeId(1), EdgeId(2)]);
        assert!(Solution::from_edge_set(&i, set).is_none());
    }

    #[test]
    fn cost_factor_uses_lower_bound() {
        let i = inst();
        let set = EdgeSet::from_edges(4, &[EdgeId(0), EdgeId(1), EdgeId(2), EdgeId(3)]);
        let mut sol = Solution::from_edge_set(&i, set).unwrap();
        assert_eq!(sol.cost_factor(), None);
        sol.lower_bound = Some(Rat::int(4));
        assert_eq!(sol.cost_factor(), Some(Rat::int(2)));
    }
}
