//! The weight abstraction shared by the path/flow algorithms.

use krsp_numeric::Lex2;
use std::ops::{Add, Neg};

/// An additive, totally ordered, negatable weight.
///
/// Implemented for `i64` (plain instance weights), `i128` (the scalarized
/// weights `q·c + p·d` and `ΔC·d − ΔD·c` which can exceed `i64`), and
/// [`Lex2`] (exact lexicographic tie-breaking).
pub trait Weight:
    Copy + Ord + Add<Output = Self> + Neg<Output = Self> + std::fmt::Debug + Send + Sync
{
    /// The additive identity.
    const ZERO: Self;

    /// True iff strictly below [`Self::ZERO`].
    fn is_negative(self) -> bool {
        self < Self::ZERO
    }

    /// Checked addition semantics: implementations must panic on overflow
    /// rather than wrap (the default `Add` for primitives wraps only in
    /// release; we add explicitly checked impls below).
    #[must_use]
    fn add_checked(self, rhs: Self) -> Self;
}

impl Weight for i64 {
    const ZERO: Self = 0;
    fn add_checked(self, rhs: Self) -> Self {
        self.checked_add(rhs).expect("i64 weight overflow")
    }
}

impl Weight for i128 {
    const ZERO: Self = 0;
    fn add_checked(self, rhs: Self) -> Self {
        self.checked_add(rhs).expect("i128 weight overflow")
    }
}

impl Weight for Lex2 {
    const ZERO: Self = Lex2::ZERO;
    fn add_checked(self, rhs: Self) -> Self {
        self + rhs // Lex2's Add is already checked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_sign() {
        assert_eq!(<i64 as Weight>::ZERO, 0);
        assert!(Weight::is_negative(-1i64));
        assert!(!Weight::is_negative(0i64));
        assert!(Weight::is_negative(Lex2::new(0, -1)));
    }

    #[test]
    fn checked_add() {
        assert_eq!(5i64.add_checked(7), 12);
        assert_eq!(
            Lex2::new(1, 2).add_checked(Lex2::new(3, 4)),
            Lex2::new(4, 6)
        );
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let _ = i64::MAX.add_checked(1);
    }
}
