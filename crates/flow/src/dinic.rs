//! Dinic's max-flow algorithm.
//!
//! Used for feasibility: kRSP requires `k` edge-disjoint `st`-paths to exist
//! at all, i.e. a unit-capacity max flow of value ≥ k (Menger).

use krsp_graph::{DiGraph, NodeId};

/// A reusable Dinic max-flow solver over an explicit arc list.
#[derive(Clone, Debug)]
pub struct Dinic {
    // Arc arrays; arc i and i^1 are a forward/backward pair.
    to: Vec<u32>,
    cap: Vec<i64>,
    head: Vec<Vec<u32>>, // per-node arc ids
    level: Vec<i32>,
    iter: Vec<usize>,
}

impl Dinic {
    /// A new empty network with `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Dinic {
            to: Vec::new(),
            cap: Vec::new(),
            head: vec![Vec::new(); n],
            level: vec![0; n],
            iter: vec![0; n],
        }
    }

    /// Adds a directed arc `u → v` with capacity `cap`; returns its id.
    pub fn add_arc(&mut self, u: NodeId, v: NodeId, cap: i64) -> usize {
        assert!(cap >= 0, "capacity must be nonnegative");
        let id = self.to.len();
        self.to.push(v.0);
        self.cap.push(cap);
        self.head[u.index()].push(id as u32);
        self.to.push(u.0);
        self.cap.push(0);
        self.head[v.index()].push((id + 1) as u32);
        id
    }

    /// Remaining capacity of arc `id`.
    #[must_use]
    pub fn residual(&self, id: usize) -> i64 {
        self.cap[id]
    }

    /// Flow pushed through arc `id` (reverse arc's accumulated capacity).
    #[must_use]
    pub fn flow_on(&self, id: usize) -> i64 {
        self.cap[id ^ 1]
    }

    fn bfs(&mut self, s: NodeId, t: NodeId) -> bool {
        self.level.iter_mut().for_each(|l| *l = -1);
        let mut queue = std::collections::VecDeque::new();
        self.level[s.index()] = 0;
        queue.push_back(s.0);
        while let Some(u) = queue.pop_front() {
            for &a in &self.head[u as usize] {
                let a = a as usize;
                let v = self.to[a] as usize;
                if self.cap[a] > 0 && self.level[v] < 0 {
                    self.level[v] = self.level[u as usize] + 1;
                    queue.push_back(v as u32);
                }
            }
        }
        self.level[t.index()] >= 0
    }

    fn dfs(&mut self, u: usize, t: usize, pushed: i64) -> i64 {
        if u == t {
            return pushed;
        }
        while self.iter[u] < self.head[u].len() {
            let a = self.head[u][self.iter[u]] as usize;
            let v = self.to[a] as usize;
            if self.cap[a] > 0 && self.level[v] == self.level[u] + 1 {
                let d = self.dfs(v, t, pushed.min(self.cap[a]));
                if d > 0 {
                    self.cap[a] -= d;
                    self.cap[a ^ 1] += d;
                    return d;
                }
            }
            self.iter[u] += 1;
        }
        0
    }

    /// Computes the max flow from `s` to `t`, optionally capped at `limit`.
    pub fn max_flow(&mut self, s: NodeId, t: NodeId, limit: i64) -> i64 {
        assert_ne!(s, t, "source and sink must differ");
        let mut flow = 0;
        while flow < limit && self.bfs(s, t) {
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let d = self.dfs(s.index(), t.index(), limit - flow);
                if d == 0 {
                    break;
                }
                flow += d;
            }
        }
        flow
    }
}

/// The maximum number of edge-disjoint `st`-paths in `graph` (Menger).
#[must_use]
pub fn max_edge_disjoint_paths(graph: &DiGraph, s: NodeId, t: NodeId) -> usize {
    let mut d = Dinic::new(graph.node_count());
    for (_, e) in graph.edge_iter() {
        d.add_arc(e.src, e.dst, 1);
    }
    d.max_flow(s, t, i64::MAX) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use krsp_graph::DiGraph;

    #[test]
    fn unit_capacity_disjoint_paths() {
        // Diamond: two disjoint 0→3 paths.
        let g = DiGraph::from_edges(4, &[(0, 1, 0, 0), (1, 3, 0, 0), (0, 2, 0, 0), (2, 3, 0, 0)]);
        assert_eq!(max_edge_disjoint_paths(&g, NodeId(0), NodeId(3)), 2);
    }

    #[test]
    fn bottleneck_limits_paths() {
        // All 0→3 routes share edge 1→2.
        let g = DiGraph::from_edges(
            4,
            &[
                (0, 1, 0, 0),
                (0, 1, 0, 0),
                (1, 2, 0, 0),
                (2, 3, 0, 0),
                (2, 3, 0, 0),
            ],
        );
        assert_eq!(max_edge_disjoint_paths(&g, NodeId(0), NodeId(3)), 1);
    }

    #[test]
    fn disconnected_zero() {
        let g = DiGraph::from_edges(3, &[(0, 1, 0, 0)]);
        assert_eq!(max_edge_disjoint_paths(&g, NodeId(0), NodeId(2)), 0);
    }

    #[test]
    fn general_capacities() {
        // 0→{1,2}→3 with a 1→2 shunt: 8 via 1→3, 10 via 2→3, and 2 more
        // rerouted 0→1→2→3 = 20 total.
        let mut d = Dinic::new(4);
        d.add_arc(NodeId(0), NodeId(1), 10);
        d.add_arc(NodeId(0), NodeId(2), 10);
        d.add_arc(NodeId(1), NodeId(2), 5);
        d.add_arc(NodeId(1), NodeId(3), 8);
        d.add_arc(NodeId(2), NodeId(3), 12);
        assert_eq!(d.max_flow(NodeId(0), NodeId(3), i64::MAX), 20);
    }

    #[test]
    fn flow_limit_respected() {
        let g = DiGraph::from_edges(4, &[(0, 1, 0, 0), (1, 3, 0, 0), (0, 2, 0, 0), (2, 3, 0, 0)]);
        let mut d = Dinic::new(4);
        let mut arcs = Vec::new();
        for (_, e) in g.edge_iter() {
            arcs.push(d.add_arc(e.src, e.dst, 1));
        }
        assert_eq!(d.max_flow(NodeId(0), NodeId(3), 1), 1);
        let used: i64 = arcs.iter().map(|&a| d.flow_on(a)).sum();
        assert_eq!(used, 2); // exactly one 2-edge path carries flow
    }

    #[test]
    fn parallel_edges_add_capacity() {
        let g = DiGraph::from_edges(2, &[(0, 1, 0, 0), (0, 1, 0, 0), (0, 1, 0, 0)]);
        assert_eq!(max_edge_disjoint_paths(&g, NodeId(0), NodeId(1)), 3);
    }
}
