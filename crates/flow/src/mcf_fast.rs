//! Min-cost flow by successive shortest paths with **Johnson potentials**:
//! after a one-time Bellman–Ford, every augmentation runs Dijkstra on
//! reduced weights — `O(k·m·log n)` instead of `O(k·n·m)`.
//!
//! Functionally identical to [`crate::mcf::min_cost_k_flow`] (property-
//! tested against it); used on the hot paths (phase 1 runs several MCFs
//! per kRSP solve).

use crate::weight::Weight;
use krsp_graph::{DiGraph, EdgeId, EdgeSet, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::mcf::McfFlow;

/// Computes a minimum-weight flow of value exactly `k` from `s` to `t` with
/// unit capacity on every edge, using potential-reduced Dijkstra.
///
/// Same contract as [`crate::mcf::min_cost_k_flow`]: `None` when fewer than
/// `k` disjoint paths exist; the input graph must have no negative-weight
/// cycle (debug-asserted).
pub fn min_cost_k_flow_fast<W: Weight>(
    graph: &DiGraph,
    s: NodeId,
    t: NodeId,
    k: usize,
    weight: impl Fn(EdgeId) -> W,
) -> Option<McfFlow<W>> {
    assert_ne!(s, t, "source and sink must differ");
    debug_assert!(
        crate::bellman_ford::find_negative_cycle(graph, &weight).is_none(),
        "min_cost_k_flow_fast requires a graph without negative-weight cycles"
    );
    let n = graph.node_count();
    let m = graph.edge_count();
    let mut flow = vec![false; m];

    // Initial potentials via Bellman–Ford from s over the *original* graph
    // (the zero flow's residual network). Unreachable nodes keep `None` and
    // never participate until they become reachable — which, for residual
    // networks of s-rooted flows, they cannot.
    let bf = crate::bellman_ford::bellman_ford(graph, s, &weight);
    let mut pot: Vec<Option<W>> = bf.dist;

    for _round in 0..k {
        // Dijkstra over the residual network with reduced weights
        // w'(a→b) = w + π[a] − π[b] ≥ 0.
        let mut dist: Vec<Option<W>> = vec![None; n];
        let mut pred: Vec<Option<(EdgeId, bool)>> = vec![None; n];
        let mut done = vec![false; n];
        let mut heap: BinaryHeap<Reverse<(W, u32)>> = BinaryHeap::new();
        dist[s.index()] = Some(W::ZERO);
        heap.push(Reverse((W::ZERO, s.0)));
        while let Some(Reverse((du, u))) = heap.pop() {
            let u = NodeId(u);
            if done[u.index()] {
                continue;
            }
            done[u.index()] = true;
            let pu = pot[u.index()].expect("settled node has a potential");
            // Forward residual arcs: unused out-edges.
            for &e in graph.out_edges(u) {
                if flow[e.index()] {
                    continue;
                }
                let v = graph.edge(e).dst;
                let Some(pv) = pot[v.index()] else {
                    // First time v becomes relevant: its true distance is
                    // unknown to the potential function; with s-rooted
                    // residual networks this cannot happen (see above), so
                    // fall back conservatively by skipping (the plain-BF
                    // implementation remains the reference).
                    continue;
                };
                let red = weight(e).add_checked(pu).add_checked(-pv);
                debug_assert!(!red.is_negative(), "reduced weight must be nonnegative");
                let cand = du.add_checked(red);
                if dist[v.index()].is_none_or(|dv| cand < dv) {
                    dist[v.index()] = Some(cand);
                    pred[v.index()] = Some((e, false));
                    heap.push(Reverse((cand, v.0)));
                }
            }
            // Backward residual arcs: used in-edges (traversed against).
            for &e in graph.in_edges(u) {
                if !flow[e.index()] {
                    continue;
                }
                let v = graph.edge(e).src;
                let Some(pv) = pot[v.index()] else { continue };
                let red = (-weight(e)).add_checked(pu).add_checked(-pv);
                debug_assert!(!red.is_negative());
                let cand = du.add_checked(red);
                if dist[v.index()].is_none_or(|dv| cand < dv) {
                    dist[v.index()] = Some(cand);
                    pred[v.index()] = Some((e, true));
                    heap.push(Reverse((cand, v.0)));
                }
            }
        }
        dist[t.index()]?;
        // Update potentials: π[v] += dist[v] for reached nodes.
        for v in 0..n {
            if let (Some(p), Some(d)) = (pot[v], dist[v]) {
                pot[v] = Some(p.add_checked(d));
            }
        }
        // Augment along the path.
        let mut cur = t;
        let mut steps = 0;
        while cur != s {
            let (e, backward) = pred[cur.index()].expect("path reconstruction");
            if backward {
                flow[e.index()] = false;
                cur = graph.edge(e).dst;
            } else {
                flow[e.index()] = true;
                cur = graph.edge(e).src;
            }
            steps += 1;
            assert!(steps <= 2 * m + 1, "augmenting path loop");
        }
    }

    let mut edges = EdgeSet::with_capacity(m);
    let mut total = W::ZERO;
    for (i, &f) in flow.iter().enumerate() {
        if f {
            let id = EdgeId(i as u32);
            edges.insert(id);
            total = total.add_checked(weight(id));
        }
    }
    debug_assert!(edges.is_k_flow(graph, s, t, k));
    Some(McfFlow {
        edges,
        weight: total,
        value: k,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcf::min_cost_k_flow;
    use krsp_numeric::Lex2;
    use proptest::prelude::*;

    fn cost(g: &DiGraph) -> impl Fn(EdgeId) -> i64 + '_ {
        move |e| g.edge(e).cost
    }

    #[test]
    fn matches_reference_on_trap_graph() {
        let trap = DiGraph::from_edges(
            5,
            &[
                (0, 1, 1, 0),
                (1, 2, 1, 0),
                (2, 4, 1, 0),
                (0, 2, 4, 0),
                (1, 3, 4, 0),
                (3, 4, 1, 0),
            ],
        );
        for k in 1..=2 {
            let a = min_cost_k_flow(&trap, NodeId(0), NodeId(4), k, cost(&trap)).unwrap();
            let b = min_cost_k_flow_fast(&trap, NodeId(0), NodeId(4), k, cost(&trap)).unwrap();
            assert_eq!(a.weight, b.weight, "k={k}");
        }
    }

    #[test]
    fn infeasible_agrees() {
        let g = DiGraph::from_edges(3, &[(0, 1, 1, 0), (1, 2, 1, 0)]);
        assert!(min_cost_k_flow_fast(&g, NodeId(0), NodeId(2), 2, cost(&g)).is_none());
    }

    #[test]
    fn lexicographic_weights_supported() {
        let g = DiGraph::from_edges(
            4,
            &[(0, 1, 1, 50), (1, 3, 1, 50), (0, 2, 1, 10), (2, 3, 1, 10)],
        );
        let f = min_cost_k_flow_fast(&g, NodeId(0), NodeId(3), 1, |e| {
            let r = g.edge(e);
            Lex2::new(r.cost as i128, r.delay as i128)
        })
        .unwrap();
        assert_eq!(f.weight, Lex2::new(2, 20));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]
        /// The potential-based SSP agrees with the Bellman–Ford reference on
        /// random graphs, for both plain and lexicographic weights.
        #[test]
        fn prop_matches_reference(
            edges in proptest::collection::vec((0u32..8, 0u32..8, 1i64..20, 0i64..20), 1..30),
            k in 1usize..4,
        ) {
            let list: Vec<_> = edges.into_iter().filter(|&(u, v, _, _)| u != v).collect();
            prop_assume!(!list.is_empty());
            let g = DiGraph::from_edges(8, &list);
            let (s, t) = (NodeId(0), NodeId(7));
            // Plain costs.
            let a = min_cost_k_flow(&g, s, t, k, cost(&g));
            let b = min_cost_k_flow_fast(&g, s, t, k, cost(&g));
            prop_assert_eq!(a.as_ref().map(|f| f.weight), b.as_ref().map(|f| f.weight));
            // Lexicographic (cost, delay).
            let lex = |e: EdgeId| {
                let r = g.edge(e);
                Lex2::new(r.cost as i128, r.delay as i128)
            };
            let a = min_cost_k_flow(&g, s, t, k, lex);
            let b = min_cost_k_flow_fast(&g, s, t, k, lex);
            prop_assert_eq!(a.map(|f| f.weight), b.map(|f| f.weight));
            // Lexicographic (cost, −delay): max-delay tie-break; costs ≥ 1
            // exclude zero-cost cycles, so no negative lex cycles exist.
            let lexneg = |e: EdgeId| {
                let r = g.edge(e);
                Lex2::new(r.cost as i128, -(r.delay as i128))
            };
            let a = min_cost_k_flow(&g, s, t, k, lexneg);
            let b = min_cost_k_flow_fast(&g, s, t, k, lexneg);
            prop_assert_eq!(a.map(|f| f.weight), b.map(|f| f.weight));
        }
    }
}
