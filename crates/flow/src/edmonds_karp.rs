//! Edmonds–Karp max flow (BFS augmentation).
//!
//! Kept alongside [`crate::dinic`] as an independently implemented
//! cross-check: the two are property-tested against each other, which
//! guards the feasibility layer (Menger counts) of the whole suite.

use krsp_graph::{DiGraph, NodeId};
use std::collections::VecDeque;

/// Max flow from `s` to `t` over an explicit arc list with capacities.
#[derive(Clone, Debug)]
pub struct EdmondsKarp {
    to: Vec<u32>,
    cap: Vec<i64>,
    head: Vec<Vec<u32>>,
}

impl EdmondsKarp {
    /// New empty network with `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        EdmondsKarp {
            to: Vec::new(),
            cap: Vec::new(),
            head: vec![Vec::new(); n],
        }
    }

    /// Adds a directed arc with capacity `cap`; returns its id.
    pub fn add_arc(&mut self, u: NodeId, v: NodeId, cap: i64) -> usize {
        assert!(cap >= 0);
        let id = self.to.len();
        self.to.push(v.0);
        self.cap.push(cap);
        self.head[u.index()].push(id as u32);
        self.to.push(u.0);
        self.cap.push(0);
        self.head[v.index()].push((id + 1) as u32);
        id
    }

    /// Computes the max flow value.
    pub fn max_flow(&mut self, s: NodeId, t: NodeId) -> i64 {
        assert_ne!(s, t);
        let n = self.head.len();
        let mut total = 0i64;
        loop {
            // BFS for the shortest augmenting path.
            let mut pred: Vec<Option<usize>> = vec![None; n];
            let mut seen = vec![false; n];
            seen[s.index()] = true;
            let mut queue = VecDeque::from([s.0]);
            'bfs: while let Some(u) = queue.pop_front() {
                for &a in &self.head[u as usize] {
                    let a = a as usize;
                    let v = self.to[a] as usize;
                    if self.cap[a] > 0 && !seen[v] {
                        seen[v] = true;
                        pred[v] = Some(a);
                        if v == t.index() {
                            break 'bfs;
                        }
                        queue.push_back(v as u32);
                    }
                }
            }
            if !seen[t.index()] {
                return total;
            }
            // Bottleneck and augment.
            let mut bottleneck = i64::MAX;
            let mut v = t.index();
            while let Some(a) = pred[v] {
                bottleneck = bottleneck.min(self.cap[a]);
                v = self.to[a ^ 1] as usize;
            }
            let mut v = t.index();
            while let Some(a) = pred[v] {
                self.cap[a] -= bottleneck;
                self.cap[a ^ 1] += bottleneck;
                v = self.to[a ^ 1] as usize;
            }
            total += bottleneck;
        }
    }
}

/// Max edge-disjoint `st`-paths via Edmonds–Karp (unit capacities).
#[must_use]
pub fn max_edge_disjoint_paths_ek(graph: &DiGraph, s: NodeId, t: NodeId) -> usize {
    let mut ek = EdmondsKarp::new(graph.node_count());
    for (_, e) in graph.edge_iter() {
        ek.add_arc(e.src, e.dst, 1);
    }
    ek.max_flow(s, t) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dinic::max_edge_disjoint_paths;
    use proptest::prelude::*;

    #[test]
    fn small_network() {
        let mut ek = EdmondsKarp::new(4);
        ek.add_arc(NodeId(0), NodeId(1), 10);
        ek.add_arc(NodeId(0), NodeId(2), 10);
        ek.add_arc(NodeId(1), NodeId(2), 5);
        ek.add_arc(NodeId(1), NodeId(3), 8);
        ek.add_arc(NodeId(2), NodeId(3), 12);
        assert_eq!(ek.max_flow(NodeId(0), NodeId(3)), 20);
    }

    #[test]
    fn no_path_zero_flow() {
        let g = DiGraph::from_edges(3, &[(1, 0, 0, 0)]);
        assert_eq!(max_edge_disjoint_paths_ek(&g, NodeId(0), NodeId(2)), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]
        /// Independent implementations agree on Menger counts.
        #[test]
        fn prop_agrees_with_dinic(
            edges in proptest::collection::vec((0u32..9, 0u32..9), 0..50),
        ) {
            let list: Vec<(u32, u32, i64, i64)> = edges
                .iter()
                .filter(|&&(u, v)| u != v)
                .map(|&(u, v)| (u, v, 0, 0))
                .collect();
            let g = DiGraph::from_edges(9, &list);
            prop_assert_eq!(
                max_edge_disjoint_paths_ek(&g, NodeId(0), NodeId(8)),
                max_edge_disjoint_paths(&g, NodeId(0), NodeId(8))
            );
        }

        /// General capacities agree too.
        #[test]
        fn prop_general_capacities_agree(
            arcs in proptest::collection::vec((0u32..6, 0u32..6, 0i64..20), 1..24),
        ) {
            let mut ek = EdmondsKarp::new(6);
            let mut dn = crate::dinic::Dinic::new(6);
            for &(u, v, c) in &arcs {
                if u != v {
                    ek.add_arc(NodeId(u), NodeId(v), c);
                    dn.add_arc(NodeId(u), NodeId(v), c);
                }
            }
            prop_assert_eq!(
                ek.max_flow(NodeId(0), NodeId(5)),
                dn.max_flow(NodeId(0), NodeId(5), i64::MAX)
            );
        }
    }
}
