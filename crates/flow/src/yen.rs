//! Yen's algorithm for the K shortest loopless paths.
//!
//! Substrate for the `yen_disjoint` heuristic baseline: enumerate the K
//! cheapest simple `st`-paths, then greedily pick a delay-feasible
//! edge-disjoint subset — a strategy practitioners reach for before
//! learning about flow-based formulations, and a useful foil in the
//! comparison experiments.

use crate::dijkstra::{dijkstra, path_to};
use krsp_graph::{DiGraph, EdgeId, NodeId};

/// A path with its total weight.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeightedPath {
    /// Edge sequence.
    pub edges: Vec<EdgeId>,
    /// Total weight under the query's weight function.
    pub weight: i64,
}

/// Returns up to `k` cheapest *simple* `s→t` paths in nondecreasing weight
/// order (Yen's algorithm over Dijkstra; weights must be nonnegative).
#[must_use]
pub fn k_shortest_paths(
    graph: &DiGraph,
    s: NodeId,
    t: NodeId,
    k: usize,
    weight: impl Fn(EdgeId) -> i64 + Copy,
) -> Vec<WeightedPath> {
    assert!(s != t, "source and sink must differ");
    let mut result: Vec<WeightedPath> = Vec::new();
    // Candidate pool (may contain duplicates; filtered on pop).
    let mut candidates: Vec<WeightedPath> = Vec::new();

    // Any path through a banned edge/node weighs more than every real path.
    let sentinel = graph
        .edge_iter()
        .map(|(id, _)| weight(id))
        .sum::<i64>()
        .saturating_add(1);
    let masked_weight = |banned_edges: &std::collections::HashSet<EdgeId>,
                         banned_nodes: &[bool],
                         e: EdgeId|
     -> i64 {
        let rec = graph.edge(e);
        if banned_edges.contains(&e)
            || banned_nodes[rec.src.index()]
            || banned_nodes[rec.dst.index()]
        {
            sentinel
        } else {
            weight(e)
        }
    };

    // Shortest path.
    let none = std::collections::HashSet::new();
    let no_nodes = vec![false; graph.node_count()];
    let (dist, pred) = dijkstra(graph, s, |e| masked_weight(&none, &no_nodes, e));
    let Some(first) = path_to(graph, &dist, &pred, t) else {
        return result;
    };
    let w0: i64 = first.iter().map(|&e| weight(e)).sum();
    if w0 >= sentinel {
        return result;
    }
    result.push(WeightedPath {
        edges: first,
        weight: w0,
    });

    while result.len() < k {
        let prev = result.last().unwrap().edges.clone();
        // Spur from every prefix of the previous path.
        let mut prefix: Vec<EdgeId> = Vec::new();
        for i in 0..prev.len() {
            let spur_node = if i == 0 {
                s
            } else {
                graph.edge(prev[i - 1]).dst
            };
            // Ban edges that would replicate an already-found path sharing
            // this prefix, and ban prefix nodes (looplessness).
            let mut banned_edges = std::collections::HashSet::new();
            for p in &result {
                if p.edges.len() > i && p.edges[..i] == prefix[..] {
                    banned_edges.insert(p.edges[i]);
                }
            }
            let mut banned_nodes = vec![false; graph.node_count()];
            let mut cur = s;
            for &e in &prefix {
                banned_nodes[cur.index()] = true;
                cur = graph.edge(e).dst;
            }
            debug_assert_eq!(cur, spur_node);

            let (dist, pred) = dijkstra(graph, spur_node, |e| {
                masked_weight(&banned_edges, &banned_nodes, e)
            });
            if let Some(spur) = path_to(graph, &dist, &pred, t) {
                let spur_w: i64 = spur
                    .iter()
                    .map(|&e| masked_weight(&banned_edges, &banned_nodes, e))
                    .sum();
                if spur_w < sentinel && !spur.is_empty() {
                    let mut total: Vec<EdgeId> = prefix.clone();
                    total.extend_from_slice(&spur);
                    let w: i64 = total.iter().map(|&e| weight(e)).sum();
                    if !candidates.iter().any(|c| c.edges == total)
                        && !result.iter().any(|r| r.edges == total)
                    {
                        candidates.push(WeightedPath {
                            edges: total,
                            weight: w,
                        });
                    }
                }
            }
            prefix.push(prev[i]);
        }
        // Take the lightest candidate.
        if candidates.is_empty() {
            break;
        }
        let best = candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| c.weight)
            .map(|(i, _)| i)
            .unwrap();
        result.push(candidates.swap_remove(best));
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cost(g: &DiGraph) -> impl Fn(EdgeId) -> i64 + Copy + '_ {
        move |e| g.edge(e).cost
    }

    #[test]
    fn classic_yen_example() {
        // Well-known 6-node example (C..H renamed 0..5).
        let g = DiGraph::from_edges(
            6,
            &[
                (0, 1, 3, 0), // C→D
                (0, 2, 2, 0), // C→E
                (1, 3, 4, 0), // D→F
                (2, 1, 1, 0), // E→D
                (2, 3, 2, 0), // E→F
                (2, 4, 3, 0), // E→G
                (3, 4, 2, 0), // F→G
                (3, 5, 1, 0), // F→H
                (4, 5, 2, 0), // G→H
            ],
        );
        let paths = k_shortest_paths(&g, NodeId(0), NodeId(5), 3, cost(&g));
        assert_eq!(paths.len(), 3);
        assert_eq!(paths[0].weight, 5); // C-E-F-H
        assert_eq!(paths[1].weight, 7); // C-E-G-H
        assert_eq!(paths[2].weight, 8); // C-E-F-G-H (or C-D-F-H, both 8)
                                        // Nondecreasing weights.
        assert!(paths.windows(2).all(|w| w[0].weight <= w[1].weight));
    }

    #[test]
    fn fewer_paths_than_requested() {
        let g = DiGraph::from_edges(3, &[(0, 1, 1, 0), (1, 2, 1, 0)]);
        let paths = k_shortest_paths(&g, NodeId(0), NodeId(2), 5, cost(&g));
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn disconnected_is_empty() {
        let g = DiGraph::from_edges(3, &[(0, 1, 1, 0)]);
        assert!(k_shortest_paths(&g, NodeId(0), NodeId(2), 3, cost(&g)).is_empty());
    }

    #[test]
    fn paths_are_simple_and_distinct() {
        let g = DiGraph::from_edges(
            5,
            &[
                (0, 1, 1, 0),
                (1, 4, 1, 0),
                (0, 2, 2, 0),
                (2, 4, 2, 0),
                (0, 3, 3, 0),
                (3, 4, 3, 0),
                (1, 2, 1, 0),
                (2, 3, 1, 0),
            ],
        );
        let paths = k_shortest_paths(&g, NodeId(0), NodeId(4), 6, cost(&g));
        assert!(paths.len() >= 4);
        for (i, p) in paths.iter().enumerate() {
            // Simple: no repeated nodes.
            let mut seen = [false; 5];
            let mut cur = NodeId(0);
            seen[0] = true;
            for &e in &p.edges {
                assert_eq!(g.edge(e).src, cur);
                cur = g.edge(e).dst;
                assert!(!seen[cur.index()], "path {i} revisits a node");
                seen[cur.index()] = true;
            }
            assert_eq!(cur, NodeId(4));
            // Distinct from all others.
            for q in &paths[i + 1..] {
                assert_ne!(p.edges, q.edges);
            }
        }
    }

    /// Brute-force enumeration of all simple paths, sorted by weight.
    fn all_paths_sorted(g: &DiGraph, s: NodeId, t: NodeId) -> Vec<i64> {
        fn dfs(
            g: &DiGraph,
            cur: NodeId,
            t: NodeId,
            visited: &mut Vec<bool>,
            w: i64,
            out: &mut Vec<i64>,
        ) {
            if cur == t {
                out.push(w);
                return;
            }
            for &e in g.out_edges(cur) {
                let v = g.edge(e).dst;
                if !visited[v.index()] {
                    visited[v.index()] = true;
                    dfs(g, v, t, visited, w + g.edge(e).cost, out);
                    visited[v.index()] = false;
                }
            }
        }
        let mut out = Vec::new();
        let mut visited = vec![false; g.node_count()];
        visited[s.index()] = true;
        dfs(g, s, t, &mut visited, 0, &mut out);
        out.sort_unstable();
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_matches_exhaustive_enumeration(
            edges in proptest::collection::vec((0u32..6, 0u32..6, 1i64..9), 1..16),
            k in 1usize..6,
        ) {
            let list: Vec<_> = edges
                .into_iter()
                .filter(|&(u, v, _)| u != v)
                .map(|(u, v, c)| (u, v, c, 0))
                .collect();
            prop_assume!(!list.is_empty());
            let g = DiGraph::from_edges(6, &list);
            let ours = k_shortest_paths(&g, NodeId(0), NodeId(5), k, cost(&g));
            let brute = all_paths_sorted(&g, NodeId(0), NodeId(5));
            let expect: Vec<i64> = brute.into_iter().take(k).collect();
            let got: Vec<i64> = ours.iter().map(|p| p.weight).collect();
            prop_assert_eq!(got, expect);
        }
    }
}
