//! Graph-algorithm substrate for the `krsp` suite.
//!
//! Everything the paper's algorithms and baselines stand on, implemented
//! from scratch:
//!
//! * [`bellman_ford`] — shortest paths with arbitrary signed weights and
//!   negative-cycle *extraction* (the engine behind cycle cancellation).
//! * [`dijkstra`] — nonnegative-weight shortest paths.
//! * [`dinic`] — unit-capacity max flow (`k`-disjoint-path feasibility,
//!   Menger-style).
//! * [`mcf`] — min-cost flow via successive shortest paths over generic
//!   ordered weights, including exact lexicographic tie-breaking (the
//!   phase-1 parametric backend and the Suurballe-style min-sum baseline
//!   [20, 21] both reduce to this).
//! * [`karp`] — Karp's minimum mean cycle (the Orda–Sprintson [18] baseline
//!   cancels minimum-mean cycles in a nonnegative-cost residual graph).
//! * [`csp`] — delay-constrained shortest path: exact pseudo-polynomial DP
//!   and the Lorenz–Raz style FPTAS [17] (the `k = 1` special case of kRSP,
//!   and the scaling template behind Theorem 4).
//! * [`weight`] — the [`weight::Weight`] abstraction (`i64`, `i128`,
//!   [`krsp_numeric::Lex2`]) shared by all of the above.
//! * [`cancel`] — the [`CancelToken`] kernels poll so deadline-expired or
//!   shed requests actually stop computing (DESIGN.md §4.13).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bellman_ford;
pub mod cancel;
pub mod csp;
pub mod dijkstra;
pub mod dinic;
pub mod edmonds_karp;
pub mod karp;
pub mod kernel;
pub mod mcf;
pub mod mcf_fast;
pub mod reference;
pub mod weight;
pub mod yen;

pub use bellman_ford::{bellman_ford, find_negative_cycle_in, BfResult, BfScratch};
pub use cancel::CancelToken;
pub use csp::{
    constrained_shortest_path, constrained_shortest_path_digested, constrained_shortest_path_with,
    constrained_shortest_paths_digested, rsp_fptas, rsp_fptas_interval, rsp_fptas_interval_with,
    rsp_fptas_with, CspPath, CspQuery, DpScratch, TopoDigest,
};
pub use dijkstra::dijkstra;
pub use dinic::{max_edge_disjoint_paths, Dinic};
pub use edmonds_karp::{max_edge_disjoint_paths_ek, EdmondsKarp};
pub use karp::min_mean_cycle;
pub use kernel::{
    kernel, ClassicFptas, IntervalScalingFptas, KernelError, KernelKind, RspKernel, KERNEL_KINDS,
};
pub use mcf::{min_cost_k_flow, McfFlow};
pub use mcf_fast::min_cost_k_flow_fast;
pub use weight::Weight;
pub use yen::{k_shortest_paths, WeightedPath};
