//! Minimum mean cycle (Karp) and minimum ratio cycle (Lawler/Dinkelbach).
//!
//! The paper's §2.1 recalls that previous work ([12, 18]) sets reversed-edge
//! costs to **zero** so their residual graphs stay nonnegative in cost, at
//! which point "the minimum-mean-cycle algorithm can be applied therein, and
//! hence a best cycle for cycle cancellation, i.e. `O` with `d(O)/c(O)`
//! minimized, can be computed in polynomial time [15]". This module provides
//! both primitives for the Orda–Sprintson-style baseline:
//!
//! * [`min_mean_cycle`] — Karp's `O(nm)` dynamic program.
//! * [`min_ratio_cycle`] — Dinkelbach iteration over exact rationals,
//!   minimizing `Σ num / Σ den` over cycles with `Σ den > 0` (per-edge
//!   `den ≥ 0` required); cycles with `Σ den = 0` and `Σ num < 0` are
//!   "infinitely good" and returned immediately.

use crate::bellman_ford::find_negative_cycle;
use krsp_graph::{DiGraph, EdgeId};
use krsp_numeric::Rat;

/// A cycle together with its numerator/denominator sums.
#[derive(Clone, Debug)]
pub struct RatioCycle {
    /// Contiguous closed edge list.
    pub edges: Vec<EdgeId>,
    /// `Σ num(e)` over the cycle.
    pub num: i64,
    /// `Σ den(e)` over the cycle (`≥ 0`; `0` means infinitely good).
    pub den: i64,
}

impl RatioCycle {
    /// The ratio as an exact rational; `None` when `den == 0`.
    #[must_use]
    pub fn ratio(&self) -> Option<Rat> {
        (self.den != 0).then(|| Rat::new(self.num as i128, self.den as i128))
    }
}

/// Karp's minimum mean cycle. Returns `(mean, cycle_edges)` or `None` for
/// acyclic graphs.
#[must_use]
pub fn min_mean_cycle(
    graph: &DiGraph,
    weight: impl Fn(EdgeId) -> i64,
) -> Option<(Rat, Vec<EdgeId>)> {
    let n = graph.node_count();
    if n == 0 || graph.edge_count() == 0 {
        return None;
    }
    // dp[k][v] = min weight of a k-edge walk ending at v (from any start),
    // realized by initializing dp[0][v] = 0 for all v.
    let mut dp = vec![vec![None::<i64>; n]; n + 1];
    #[allow(clippy::needless_range_loop)] // dp[0] init; iterator form obscures it
    for v in 0..n {
        dp[0][v] = Some(0);
    }
    for k in 1..=n {
        for (id, e) in graph.edge_iter() {
            if let Some(du) = dp[k - 1][e.src.index()] {
                let cand = du
                    .checked_add(weight(id))
                    .expect("min_mean_cycle weight overflow");
                if dp[k][e.dst.index()].is_none_or(|dv| cand < dv) {
                    dp[k][e.dst.index()] = Some(cand);
                }
            }
        }
    }

    // mean* = min_v max_{0<=k<n, dp[k][v] defined} (dp[n][v]-dp[k][v])/(n-k)
    let mut best: Option<(Rat, usize)> = None;
    #[allow(clippy::needless_range_loop)] // rows dp[n] and dp[k] indexed jointly
    for v in 0..n {
        let Some(dn) = dp[n][v] else { continue };
        let mut worst: Option<Rat> = None;
        #[allow(clippy::needless_range_loop)]
        for k in 0..n {
            if let Some(dk) = dp[k][v] {
                let val = Rat::new((dn - dk) as i128, (n - k) as i128);
                worst = Some(worst.map_or(val, |w: Rat| w.max(val)));
            }
        }
        if let Some(w) = worst {
            if best.as_ref().is_none_or(|(b, _)| w < *b) {
                best = Some((w, v));
            }
        }
    }
    let (mean, _) = best?;

    // Extraction: with mean* = p/q known, reweight every edge to
    // `(q·w(e) − p, −1)` lexicographically. No cycle is negative in the
    // primary component (mean* is minimal), and a minimum-mean cycle has
    // primary total exactly 0 and secondary total −len < 0 — i.e. it is
    // precisely a lex-negative cycle. This is exact and avoids the classic
    // pitfalls of walking Karp's DP parents.
    let (p, q) = (mean.num(), mean.den());
    let cycle = find_negative_cycle(graph, |e| {
        krsp_numeric::Lex2::new(
            (q * weight(e) as i128)
                .checked_sub(p)
                .expect("min-mean reweight overflow"),
            -1,
        )
    })
    .expect("a minimum-mean cycle exists by construction");
    debug_assert_eq!(
        {
            let total: i64 = cycle.iter().map(|&e| weight(e)).sum();
            Rat::new(total as i128, cycle.len() as i128)
        },
        mean
    );
    Some((mean, cycle))
}

/// Minimum ratio cycle via Dinkelbach iteration.
///
/// Minimizes `Σ num(e) / Σ den(e)` over directed cycles with `Σ den > 0`.
/// Requires `den(e) ≥ 0` for every edge (asserted). If a cycle with
/// `Σ den = 0` and `Σ num < 0` is encountered it is returned immediately
/// (`den == 0` in the result — "infinitely good").
#[must_use]
pub fn min_ratio_cycle(
    graph: &DiGraph,
    num: impl Fn(EdgeId) -> i64,
    den: impl Fn(EdgeId) -> i64,
) -> Option<RatioCycle> {
    for (id, _) in graph.edge_iter() {
        assert!(den(id) >= 0, "min_ratio_cycle requires den(e) >= 0");
    }
    let sums = |edges: &[EdgeId]| -> (i64, i64) {
        (
            edges.iter().map(|&e| num(e)).sum(),
            edges.iter().map(|&e| den(e)).sum(),
        )
    };

    // Bootstrap probe at μ larger than any achievable ratio.
    let mu_max = graph
        .edge_iter()
        .map(|(id, _)| num(id).abs())
        .sum::<i64>()
        .saturating_add(1);
    let probe = |mu: Rat| -> Option<Vec<EdgeId>> {
        let (p, q) = (mu.num(), mu.den());
        find_negative_cycle(graph, |e| {
            (q * num(e) as i128)
                .checked_sub(p * den(e) as i128)
                .expect("ratio probe overflow")
        })
    };

    let mut current = probe(Rat::int(mu_max as i128))?;
    loop {
        let (nsum, dsum) = sums(&current);
        if dsum == 0 {
            debug_assert!(nsum < 0);
            return Some(RatioCycle {
                edges: current,
                num: nsum,
                den: 0,
            });
        }
        let mu = Rat::new(nsum as i128, dsum as i128);
        match probe(mu) {
            Some(better) => current = better,
            None => {
                return Some(RatioCycle {
                    edges: current,
                    num: nsum,
                    den: dsum,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn simple_min_mean() {
        // Cycle A: 0→1→0 weights 2,2 → mean 2.
        // Cycle B: 2→3→2 weights 1,-3 → mean -1.
        let g = DiGraph::from_edges(
            4,
            &[(0, 1, 2, 0), (1, 0, 2, 0), (2, 3, 1, 0), (3, 2, -3, 0)],
        );
        let (mean, cyc) = min_mean_cycle(&g, |e| g.edge(e).cost).unwrap();
        assert_eq!(mean, Rat::int(-1));
        let total: i64 = cyc.iter().map(|&e| g.edge(e).cost).sum();
        assert_eq!(Rat::new(total as i128, cyc.len() as i128), Rat::int(-1));
    }

    #[test]
    fn acyclic_returns_none() {
        let g = DiGraph::from_edges(3, &[(0, 1, 1, 0), (1, 2, 1, 0)]);
        assert!(min_mean_cycle(&g, |e| g.edge(e).cost).is_none());
    }

    #[test]
    fn self_loop_mean() {
        let g = DiGraph::from_edges(2, &[(0, 0, 5, 0), (0, 1, 1, 0)]);
        let (mean, cyc) = min_mean_cycle(&g, |e| g.edge(e).cost).unwrap();
        assert_eq!(mean, Rat::int(5));
        assert_eq!(cyc, vec![EdgeId(0)]);
    }

    #[test]
    fn ratio_cycle_picks_best() {
        // Cycle A: num -4, den 4 → ratio -1.
        // Cycle B: num -6, den 2 → ratio -3 (better).
        let g = DiGraph::from_edges(
            4,
            &[
                (0, 1, -4, 2), // num=cost, den=delay here
                (1, 0, 0, 2),
                (2, 3, -6, 1),
                (3, 2, 0, 1),
            ],
        );
        let rc = min_ratio_cycle(&g, |e| g.edge(e).cost, |e| g.edge(e).delay).unwrap();
        assert_eq!(rc.ratio(), Some(Rat::int(-3)));
    }

    #[test]
    fn ratio_cycle_zero_denominator_preferred() {
        let g = DiGraph::from_edges(
            2,
            &[(0, 1, -1, 0), (1, 0, 0, 0)], // Σnum=-1, Σden=0
        );
        let rc = min_ratio_cycle(&g, |e| g.edge(e).cost, |e| g.edge(e).delay).unwrap();
        assert_eq!(rc.den, 0);
        assert!(rc.num < 0);
    }

    #[test]
    fn ratio_none_without_cycles() {
        let g = DiGraph::from_edges(3, &[(0, 1, -5, 1), (1, 2, -5, 1)]);
        assert!(min_ratio_cycle(&g, |e| g.edge(e).cost, |e| g.edge(e).delay).is_none());
    }

    #[test]
    fn positive_ratio_cycles_found() {
        // Only cycle has positive ratio 3/2; still returned (it is the min).
        let g = DiGraph::from_edges(2, &[(0, 1, 1, 1), (1, 0, 2, 1)]);
        let rc = min_ratio_cycle(&g, |e| g.edge(e).cost, |e| g.edge(e).delay).unwrap();
        assert_eq!(rc.ratio(), Some(Rat::new(3, 2)));
    }

    fn random_graph(edges: &[(u32, u32, i64)]) -> DiGraph {
        DiGraph::from_edges(
            6,
            &edges
                .iter()
                .map(|&(u, v, c)| (u, v, c, 1))
                .collect::<Vec<_>>(),
        )
    }

    /// Exhaustive minimum mean over all simple cycles (DFS enumeration).
    fn brute_min_mean(g: &DiGraph) -> Option<Rat> {
        let n = g.node_count();
        let mut best: Option<Rat> = None;
        // Enumerate simple cycles by DFS from each start node, only visiting
        // nodes > start to avoid duplicates... simpler: allow duplicates.
        fn dfs(
            g: &DiGraph,
            start: usize,
            cur: usize,
            visited: &mut Vec<bool>,
            weight_sum: i64,
            len: usize,
            best: &mut Option<Rat>,
        ) {
            for &e in g.out_edges(krsp_graph::NodeId(cur as u32)) {
                let rec = g.edge(e);
                let v = rec.dst.index();
                let w = weight_sum + rec.cost;
                if v == start {
                    let mean = Rat::new(w as i128, (len + 1) as i128);
                    if best.is_none_or(|b| mean < b) {
                        *best = Some(mean);
                    }
                } else if !visited[v] {
                    visited[v] = true;
                    dfs(g, start, v, visited, w, len + 1, best);
                    visited[v] = false;
                }
            }
        }
        for start in 0..n {
            let mut visited = vec![false; n];
            visited[start] = true;
            dfs(g, start, start, &mut visited, 0, 0, &mut best);
        }
        best
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_karp_matches_brute_force(
            edges in proptest::collection::vec((0u32..6, 0u32..6, -10i64..10), 1..14),
        ) {
            let g = random_graph(&edges);
            let ours = min_mean_cycle(&g, |e| g.edge(e).cost).map(|(m, _)| m);
            let brute = brute_min_mean(&g);
            prop_assert_eq!(ours, brute);
        }

        #[test]
        fn prop_ratio_with_unit_den_matches_mean(
            edges in proptest::collection::vec((0u32..5, 0u32..5, -8i64..8), 1..10),
        ) {
            let g = random_graph(&edges);
            let mean = min_mean_cycle(&g, |e| g.edge(e).cost).map(|(m, _)| m);
            let ratio = min_ratio_cycle(&g, |e| g.edge(e).cost, |_| 1)
                .map(|rc| rc.ratio().unwrap());
            prop_assert_eq!(mean, ratio);
        }
    }
}
