//! Min-cost flow by successive shortest paths over generic ordered weights.
//!
//! Unit capacities (one unit per graph edge) are all the suite needs: a
//! kRSP solution is a unit `st`-flow of value `k`. Shortest augmenting paths
//! are found with Bellman–Ford on the residual arc network, so weights may
//! be negative (e.g. exact lexicographic weights whose secondary component
//! dips below zero) as long as the *input graph* has no negative-weight
//! cycle — which holds for every weighting used in this suite and is
//! debug-asserted.
//!
//! Successively augmenting along shortest paths yields, after the `v`-th
//! augmentation, a minimum-weight flow of value `v` — the classical SSP
//! invariant. The parametric phase-1 backend and the Suurballe-style
//! min-sum baseline ([20, 21]) are thin wrappers over [`min_cost_k_flow`].

use crate::weight::Weight;
use krsp_graph::{DiGraph, EdgeId, EdgeSet, NodeId};

/// A minimum-weight unit `st`-flow.
#[derive(Clone, Debug)]
pub struct McfFlow<W> {
    /// Edges carrying one unit of flow (a `k`-unit flow edge set).
    pub edges: EdgeSet,
    /// Total weight of the flow.
    pub weight: W,
    /// Flow value actually achieved (= requested `k` on success).
    pub value: usize,
}

/// Computes a minimum-weight flow of value exactly `k` from `s` to `t` with
/// unit capacity on every edge. Returns `None` if fewer than `k` disjoint
/// paths exist.
///
/// Requirement: `graph` has no negative-weight cycle under `weight`
/// (debug-asserted).
pub fn min_cost_k_flow<W: Weight>(
    graph: &DiGraph,
    s: NodeId,
    t: NodeId,
    k: usize,
    weight: impl Fn(EdgeId) -> W,
) -> Option<McfFlow<W>> {
    assert_ne!(s, t, "source and sink must differ");
    debug_assert!(
        crate::bellman_ford::find_negative_cycle(graph, &weight).is_none(),
        "min_cost_k_flow requires a graph without negative-weight cycles"
    );

    let m = graph.edge_count();
    // flow[e] = true iff edge e currently carries a unit.
    let mut flow = vec![false; m];

    for _round in 0..k {
        // Bellman–Ford over the residual network: forward arcs for unused
        // edges (weight w), backward arcs for used edges (weight -w).
        let n = graph.node_count();
        let mut dist: Vec<Option<W>> = vec![None; n];
        // pred[v] = (edge, is_backward)
        let mut pred: Vec<Option<(EdgeId, bool)>> = vec![None; n];
        dist[s.index()] = Some(W::ZERO);
        for _ in 0..n {
            let mut changed = false;
            for (id, e) in graph.edge_iter() {
                if !flow[id.index()] {
                    if let Some(du) = dist[e.src.index()] {
                        let cand = du.add_checked(weight(id));
                        if dist[e.dst.index()].is_none_or(|dv| cand < dv) {
                            dist[e.dst.index()] = Some(cand);
                            pred[e.dst.index()] = Some((id, false));
                            changed = true;
                        }
                    }
                } else if let Some(dv) = dist[e.dst.index()] {
                    let cand = dv.add_checked(-weight(id));
                    if dist[e.src.index()].is_none_or(|du| cand < du) {
                        dist[e.src.index()] = Some(cand);
                        pred[e.src.index()] = Some((id, true));
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        dist[t.index()]?;
        // Augment one unit along the shortest path.
        let mut cur = t;
        let mut steps = 0;
        while cur != s {
            let (e, backward) = pred[cur.index()].expect("path reconstruction");
            if backward {
                flow[e.index()] = false;
                cur = graph.edge(e).dst;
            } else {
                flow[e.index()] = true;
                cur = graph.edge(e).src;
            }
            steps += 1;
            assert!(steps <= 2 * m + 1, "augmenting path reconstruction loop");
        }
    }

    let mut edges = EdgeSet::with_capacity(m);
    let mut total = W::ZERO;
    for (i, &f) in flow.iter().enumerate() {
        if f {
            let id = EdgeId(i as u32);
            edges.insert(id);
            total = total.add_checked(weight(id));
        }
    }
    debug_assert!(edges.is_k_flow(graph, s, t, k));
    Some(McfFlow {
        edges,
        weight: total,
        value: k,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use krsp_numeric::Lex2;
    use proptest::prelude::*;

    fn cost(g: &DiGraph) -> impl Fn(EdgeId) -> i64 + '_ {
        move |e| g.edge(e).cost
    }

    #[test]
    fn single_path_is_shortest() {
        let g = DiGraph::from_edges(4, &[(0, 1, 1, 0), (1, 3, 1, 0), (0, 2, 5, 0), (2, 3, 5, 0)]);
        let f = min_cost_k_flow(&g, NodeId(0), NodeId(3), 1, cost(&g)).unwrap();
        assert_eq!(f.weight, 2);
        let got: Vec<_> = f.edges.iter().collect();
        assert_eq!(got, vec![EdgeId(0), EdgeId(1)]);
    }

    #[test]
    fn two_units_take_both_paths() {
        let g = DiGraph::from_edges(4, &[(0, 1, 1, 0), (1, 3, 1, 0), (0, 2, 5, 0), (2, 3, 5, 0)]);
        let f = min_cost_k_flow(&g, NodeId(0), NodeId(3), 2, cost(&g)).unwrap();
        assert_eq!(f.weight, 12);
        assert_eq!(f.edges.count(), 4);
    }

    #[test]
    fn rerouting_via_backward_arcs() {
        // Classic Suurballe example where the greedy first path must be
        // partially undone: s=0, t=3.
        // Edges: 0→1 (1), 1→3 (1), 0→2 (2), 2→1 (... ) build the trap:
        // shortest single path uses 0→1→3; two disjoint paths must be
        // 0→1→2→3 and 0→... construct explicitly:
        let g = DiGraph::from_edges(
            4,
            &[
                (0, 1, 1, 0), // e0
                (1, 3, 1, 0), // e1
                (0, 2, 2, 0), // e2
                (2, 3, 2, 0), // e3
                (1, 2, 0, 0), // e4
                (2, 1, 100, 0),
            ],
        );
        // First augmentation: 0→1→3 (cost 2). Second: 0→2→3 (cost 4).
        // Total 6 — no rerouting needed here. Now make direct 2→3 pricey so
        // rerouting pays off; use a dedicated trap graph instead:
        let trap = DiGraph::from_edges(
            5,
            &[
                (0, 1, 1, 0), // e0
                (1, 2, 1, 0), // e1
                (2, 4, 1, 0), // e2  — shortest path 0-1-2-4 cost 3
                (0, 2, 4, 0), // e3
                (1, 3, 4, 0), // e4
                (3, 4, 1, 0), // e5
            ],
        );
        let f1 = min_cost_k_flow(&trap, NodeId(0), NodeId(4), 1, cost(&trap)).unwrap();
        assert_eq!(f1.weight, 3);
        let f2 = min_cost_k_flow(&trap, NodeId(0), NodeId(4), 2, cost(&trap)).unwrap();
        // Optimal pair: 0-1-3-4 (6) and 0-2-4 (5) = 11; greedy without
        // rerouting would be 3 + (4+4+1)... SSP must find 11.
        assert_eq!(f2.weight, 11);
        assert!(f2.edges.is_k_flow(&trap, NodeId(0), NodeId(4), 2));
        let _ = g;
    }

    #[test]
    fn infeasible_when_not_enough_paths() {
        let g = DiGraph::from_edges(3, &[(0, 1, 1, 0), (1, 2, 1, 0)]);
        assert!(min_cost_k_flow(&g, NodeId(0), NodeId(2), 2, cost(&g)).is_none());
        assert!(min_cost_k_flow(&g, NodeId(0), NodeId(2), 1, cost(&g)).is_some());
    }

    #[test]
    fn lexicographic_tie_breaking_minimizes_secondary() {
        // Two cost-equal paths with different delays; Lex2(cost, delay)
        // must pick the lower-delay one.
        let g = DiGraph::from_edges(
            4,
            &[
                (0, 1, 1, 50), // e0
                (1, 3, 1, 50), // e1   path A: cost 2, delay 100
                (0, 2, 1, 10), // e2
                (2, 3, 1, 10), // e3   path B: cost 2, delay 20
            ],
        );
        let f = min_cost_k_flow(&g, NodeId(0), NodeId(3), 1, |e| {
            let r = g.edge(e);
            Lex2::new(r.cost as i128, r.delay as i128)
        })
        .unwrap();
        assert_eq!(f.weight, Lex2::new(2, 20));
        let got: Vec<_> = f.edges.iter().collect();
        assert_eq!(got, vec![EdgeId(2), EdgeId(3)]);
    }

    #[test]
    fn max_delay_tiebreak_via_negated_secondary() {
        let g = DiGraph::from_edges(
            4,
            &[(0, 1, 1, 50), (1, 3, 1, 50), (0, 2, 1, 10), (2, 3, 1, 10)],
        );
        let f = min_cost_k_flow(&g, NodeId(0), NodeId(3), 1, |e| {
            let r = g.edge(e);
            Lex2::new(r.cost as i128, -(r.delay as i128))
        })
        .unwrap();
        assert_eq!(f.weight.primary, 2);
        assert_eq!(f.weight.secondary, -100); // picked the high-delay path
    }

    /// Brute force: enumerate all k-subsets of edges forming a k-flow.
    fn brute_force_min(g: &DiGraph, s: NodeId, t: NodeId, k: usize) -> Option<i64> {
        let m = g.edge_count();
        let mut best: Option<i64> = None;
        for mask in 0u32..(1 << m) {
            let ids: Vec<EdgeId> = (0..m)
                .filter(|&i| mask >> i & 1 == 1)
                .map(|i| EdgeId(i as u32))
                .collect();
            let set = EdgeSet::from_edges(m, &ids);
            if set.is_k_flow(g, s, t, k) {
                let c = set.total_cost(g);
                // A k-flow edge set may include cycles; with nonnegative
                // costs dropping cycles never hurts, so the minimum over all
                // k-flow sets equals the minimum over k path systems.
                best = Some(best.map_or(c, |b: i64| b.min(c)));
            }
        }
        best
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_matches_brute_force(
            edges in proptest::collection::vec((0u32..6, 0u32..6, 0i64..20), 1..12),
            k in 1usize..3,
        ) {
            let list: Vec<(u32, u32, i64, i64)> = edges
                .iter()
                .filter(|&&(u, v, _)| u != v)
                .map(|&(u, v, c)| (u, v, c, 0))
                .collect();
            prop_assume!(!list.is_empty());
            let g = DiGraph::from_edges(6, &list);
            let (s, t) = (NodeId(0), NodeId(5));
            let ours = min_cost_k_flow(&g, s, t, k, cost(&g));
            let brute = brute_force_min(&g, s, t, k);
            match (ours, brute) {
                (None, None) => {}
                (Some(f), Some(b)) => prop_assert_eq!(f.weight, b),
                (a, b) => prop_assert!(false, "mismatch: ours={:?} brute={:?}", a.map(|f| f.weight), b),
            }
        }
    }
}
