//! Cooperative cancellation for long-running kernels.
//!
//! A [`CancelToken`] combines a shared flag, an optional absolute deadline,
//! and an optional parent token. Kernels poll [`CancelToken::is_cancelled`]
//! at loop boundaries (per DP level batch, per probe, per seed) and bail
//! out with their usual "no result" value; callers above translate that
//! into a degraded-but-complete answer. Tokens are cheap to clone (an
//! `Arc`) and the default token ([`CancelToken::never`]) carries no
//! allocation at all, so uncancellable call paths pay one `Option` check.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A cloneable cancellation handle: flag + optional deadline + optional
/// parent chain. See the module docs for the polling contract.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Option<Arc<Inner>>,
}

#[derive(Debug)]
struct Inner {
    flag: AtomicBool,
    deadline: Option<Instant>,
    parent: Option<Arc<Inner>>,
}

impl Inner {
    fn is_cancelled(&self) -> bool {
        if self.flag.load(Ordering::Relaxed) {
            return true;
        }
        let tripped = self.deadline.is_some_and(|d| Instant::now() >= d)
            || self.parent.as_ref().is_some_and(|p| p.is_cancelled());
        if tripped {
            // Latch, so later polls skip the clock read / parent walk.
            self.flag.store(true, Ordering::Relaxed);
        }
        tripped
    }
}

impl CancelToken {
    /// A token that can never be cancelled (the default). Costs nothing to
    /// clone or poll.
    #[must_use]
    pub fn never() -> Self {
        CancelToken { inner: None }
    }

    /// A root token cancellable only via [`cancel`](CancelToken::cancel).
    #[must_use]
    pub fn cancellable() -> Self {
        CancelToken {
            inner: Some(Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: None,
                parent: None,
            })),
        }
    }

    /// A root token that trips automatically at `deadline`.
    #[must_use]
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken::never().child_with_deadline(Some(deadline))
    }

    /// A child token: trips when `self` trips, when explicitly cancelled,
    /// or (if given) when `deadline` passes. Cancelling the child does not
    /// affect the parent.
    #[must_use]
    pub fn child_with_deadline(&self, deadline: Option<Instant>) -> Self {
        CancelToken {
            inner: Some(Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline,
                parent: self.inner.clone(),
            })),
        }
    }

    /// Trips this token (no-op on a [`never`](CancelToken::never) token).
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.flag.store(true, Ordering::Relaxed);
        }
    }

    /// True once the token has tripped (flag, deadline, or any ancestor).
    #[inline]
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => inner.is_cancelled(),
        }
    }

    /// False only for [`never`](CancelToken::never) tokens.
    #[must_use]
    pub fn can_cancel(&self) -> bool {
        self.inner.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn never_token_never_cancels() {
        let t = CancelToken::never();
        assert!(!t.can_cancel());
        t.cancel();
        assert!(!t.is_cancelled());
        assert!(!CancelToken::default().is_cancelled());
    }

    #[test]
    fn explicit_cancel_trips_and_latches() {
        let t = CancelToken::cancellable();
        assert!(!t.is_cancelled());
        let clone = t.clone();
        clone.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn deadline_trips_the_token() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        let far = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!far.is_cancelled());
    }

    #[test]
    fn parent_cancel_reaches_children_but_not_vice_versa() {
        let parent = CancelToken::cancellable();
        let child = parent.child_with_deadline(None);
        let sibling = parent.child_with_deadline(None);
        child.cancel();
        assert!(child.is_cancelled());
        assert!(!parent.is_cancelled());
        assert!(!sibling.is_cancelled());
        parent.cancel();
        assert!(sibling.is_cancelled());
    }
}
