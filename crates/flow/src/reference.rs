//! Pre-flattening RSP kernels, kept verbatim as oracles.
//!
//! This module preserves the original 2-D `Option`-table implementation of
//! the budgeted DP and the FPTAS built on it, exactly as they stood before
//! the flat-kernel rewrite in [`crate::csp`]. It exists for two reasons:
//!
//! 1. **Oracle testing** — the property suite pins the flat kernel to this
//!    implementation: identical values, identical tie-breaking, identical
//!    recovered paths on random instances.
//! 2. **A/B benchmarking** — `BENCH_kernels.json` tracks the speedup of the
//!    flat kernel against this baseline on the same instances.
//!
//! Do not "improve" this module: its value is that it does not change.

#![doc(hidden)]

use crate::csp::{geometric_midpoint, CspPath};
use crate::dijkstra::dijkstra;
use krsp_graph::{DiGraph, EdgeId, NodeId};

/// Budgeted DP tables in the original 2-D `Option` layout:
/// `value[b][v]` = minimum objective over `s→v` walks with `Σ budget ≤ b`.
pub struct BudgetDp {
    /// `value[b][v]`, `None` = unreachable at that level.
    pub value: Vec<Vec<Option<i64>>>,
    /// `parent[b][v] = (edge, b_prev)` on the optimal walk.
    pub parent: Vec<Vec<Option<(EdgeId, usize)>>>,
}

/// The original budgeted DP: per-level allocation, level cloning, `&dyn Fn`
/// weight dispatch, and a full-graph heap rebuild for every budget level.
pub fn budget_dp(
    graph: &DiGraph,
    s: NodeId,
    bound: usize,
    budget_of: &dyn Fn(EdgeId) -> i64,
    objective_of: &dyn Fn(EdgeId) -> i64,
) -> BudgetDp {
    let n = graph.node_count();
    for (id, _) in graph.edge_iter() {
        assert!(budget_of(id) >= 0, "budgets must be nonnegative");
        assert!(objective_of(id) >= 0, "objectives must be nonnegative");
    }
    let mut value: Vec<Vec<Option<i64>>> = Vec::with_capacity(bound + 1);
    let mut parent: Vec<Vec<Option<(EdgeId, usize)>>> = Vec::with_capacity(bound + 1);

    for b in 0..=bound {
        // Initialize from carry-over and cross-level transitions.
        let mut val: Vec<Option<i64>> = if b == 0 {
            vec![None; n]
        } else {
            value[b - 1].clone()
        };
        let mut par: Vec<Option<(EdgeId, usize)>> = vec![None; n];
        val[s.index()] = Some(0);
        for (id, e) in graph.edge_iter() {
            let be = budget_of(id) as usize;
            if be >= 1 && be <= b {
                if let Some(vu) = value[b - be][e.src.index()] {
                    let cand = vu + objective_of(id);
                    if val[e.dst.index()].is_none_or(|x| cand < x) {
                        val[e.dst.index()] = Some(cand);
                        par[e.dst.index()] = Some((id, b - be));
                    }
                }
            }
        }
        // Within-level relaxation over zero-budget edges (Dijkstra flavor:
        // repeatedly settle the smallest tentative value).
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(i64, u32)>> = val
            .iter()
            .enumerate()
            .filter_map(|(v, x)| x.map(|x| std::cmp::Reverse((x, v as u32))))
            .collect();
        let mut done = vec![false; n];
        while let Some(std::cmp::Reverse((dv, v))) = heap.pop() {
            let v = NodeId(v);
            if done[v.index()] || val[v.index()] != Some(dv) {
                continue;
            }
            done[v.index()] = true;
            for &e in graph.out_edges(v) {
                if budget_of(e) == 0 {
                    let u = graph.edge(e).dst;
                    let cand = dv + objective_of(e);
                    if val[u.index()].is_none_or(|x| cand < x) {
                        val[u.index()] = Some(cand);
                        par[u.index()] = Some((e, b));
                        heap.push(std::cmp::Reverse((cand, u.0)));
                    }
                }
            }
        }
        value.push(val);
        parent.push(par);
    }
    BudgetDp { value, parent }
}

/// Path reconstruction over the original tables.
pub fn recover(dp: &BudgetDp, graph: &DiGraph, s: NodeId, t: NodeId, mut b: usize) -> Vec<EdgeId> {
    let mut edges = Vec::new();
    let mut v = t;
    let mut guard = 0usize;
    while v != s {
        // Drop to the lowest level with the same value (carried entries have
        // no parent at this level).
        while b > 0 && dp.value[b - 1][v.index()] == dp.value[b][v.index()] {
            b -= 1;
        }
        let (e, bp) = dp.parent[b][v.index()].expect("dp parent chain intact");
        edges.push(e);
        v = graph.edge(e).src;
        b = bp;
        guard += 1;
        assert!(
            guard <= graph.edge_count() + dp.value.len(),
            "dp path recovery loop"
        );
    }
    edges.reverse();
    edges
}

/// The original exact restricted shortest path on the 2-D tables.
#[must_use]
pub fn constrained_shortest_path(
    graph: &DiGraph,
    s: NodeId,
    t: NodeId,
    delay_bound: i64,
) -> Option<CspPath> {
    assert!(delay_bound >= 0);
    let dp = budget_dp(
        graph,
        s,
        delay_bound as usize,
        &|e| graph.edge(e).delay,
        &|e| graph.edge(e).cost,
    );
    dp.value[delay_bound as usize][t.index()]?;
    let edges = recover(&dp, graph, s, t, delay_bound as usize);
    let p = CspPath::from_edges(graph, edges);
    debug_assert!(p.delay <= delay_bound);
    Some(p)
}

/// The original Lorenz–Raz FPTAS driving the 2-D DP.
#[must_use]
pub fn rsp_fptas(
    graph: &DiGraph,
    s: NodeId,
    t: NodeId,
    delay_bound: i64,
    eps_num: u32,
    eps_den: u32,
) -> Option<CspPath> {
    assert!(eps_num > 0 && eps_den > 0, "epsilon must be positive");
    assert!(delay_bound >= 0);
    let n = graph.node_count() as i64;

    // Feasibility + bottleneck bounds: the smallest edge-cost threshold c*
    // whose subgraph contains a delay-feasible path gives OPT ∈ [c*, n·c*].
    let sentinel = graph.total_delay().max(delay_bound).saturating_add(1);
    let min_delay_using = |threshold: i64| -> bool {
        let (dist, _) = dijkstra(graph, s, |e| {
            if graph.edge(e).cost <= threshold {
                graph.edge(e).delay
            } else {
                sentinel
            }
        });
        matches!(dist[t.index()], Some(d) if d <= delay_bound)
    };
    let mut costs: Vec<i64> = graph.edges().iter().map(|e| e.cost).collect();
    costs.push(0);
    costs.sort_unstable();
    costs.dedup();
    if !min_delay_using(*costs.last().unwrap()) {
        return None; // no delay-feasible path at all
    }
    // Binary search the threshold list.
    let mut lo = 0usize;
    let mut hi = costs.len() - 1;
    while lo < hi {
        let mid = (lo + hi) / 2;
        if min_delay_using(costs[mid]) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let cstar = costs[lo];
    if cstar == 0 {
        // A zero-cost feasible path exists: it is optimal; extract it via
        // the exact min-delay path over zero-cost edges.
        let (dist, pred) = dijkstra(graph, s, |e| {
            if graph.edge(e).cost == 0 {
                graph.edge(e).delay
            } else {
                sentinel
            }
        });
        let edges = crate::dijkstra::path_to(graph, &dist, &pred, t)?;
        let p = CspPath::from_edges(graph, edges);
        debug_assert_eq!(p.cost, 0);
        return Some(p);
    }
    let mut lb = cstar; // OPT ≥ lb
    let mut ub = n * cstar; // a feasible path of cost ≤ ub exists

    // Scaled test: does a delay-feasible path of cost ≤ c(1+ε0) exist?
    let test = |c: i64| -> Option<CspPath> {
        let theta_num = c;
        let theta_den = n + 1;
        let scaled = |e: EdgeId| -> i64 { graph.edge(e).cost * theta_den / theta_num };
        let budget = (n + 1) as usize; // floor(c/θ) = n+1
        let dp = budget_dp(
            graph,
            s,
            budget,
            &|e| scaled(e).min(budget as i64 + 1),
            &|e| graph.edge(e).delay,
        );
        let b = (0..=budget).find(|&b| dp.value[b][t.index()].is_some_and(|d| d <= delay_bound))?;
        let edges = recover(&dp, graph, s, t, b);
        Some(CspPath::from_edges(graph, edges))
    };

    // Geometric shrink until ub ≤ 4·lb.
    while ub > 4 * lb {
        let c = geometric_midpoint(lb, ub);
        match test(c) {
            Some(p) => {
                debug_assert!(p.cost <= 2 * c, "test contract: cost ≤ (1+ε₀)·c");
                ub = ub.min((2 * c).max(lb));
            }
            None => {
                lb = c + 1;
            }
        }
        debug_assert!(lb <= ub);
    }

    // Final scaled DP with target ε.
    let denom = lb as i128 * eps_num as i128;
    let scaled = |e: EdgeId| -> i64 {
        ((graph.edge(e).cost as i128 * (n as i128 + 1) * eps_den as i128) / denom) as i64
    };
    let budget = ((ub as i128 * (n as i128 + 1) * eps_den as i128) / denom + n as i128 + 1)
        .min(i128::from(u32::MAX)) as usize;
    let dp = budget_dp(
        graph,
        s,
        budget,
        &|e| scaled(e).min(budget as i64 + 1),
        &|e| graph.edge(e).delay,
    );
    let b = (0..=budget).find(|&b| dp.value[b][t.index()].is_some_and(|d| d <= delay_bound))?;
    let edges = recover(&dp, graph, s, t, b);
    let p = CspPath::from_edges(graph, edges);
    debug_assert!(p.delay <= delay_bound);
    Some(p)
}
