//! Restricted (constrained) shortest paths — the `k = 1` case of kRSP.
//!
//! * [`constrained_shortest_path`] — exact pseudo-polynomial DP: the
//!   minimum-cost `st`-path with delay at most `D`.
//! * [`rsp_fptas`] — the Lorenz–Raz style `(1+ε)` FPTAS [17]: cost at most
//!   `(1+ε)·OPT`, delay at most `D`, polynomial in `1/ε`. This is also the
//!   scaling template the paper's Theorem 4 applies to Algorithm 1.
//!
//! Both are used as the `k = 1` baseline (`greedy_rsp` runs them per path).

use crate::dijkstra::dijkstra;
use krsp_graph::{DiGraph, EdgeId, NodeId};

/// A cost/delay-annotated simple path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CspPath {
    /// Edge sequence from `s` to `t`.
    pub edges: Vec<EdgeId>,
    /// Total cost at original weights.
    pub cost: i64,
    /// Total delay at original weights.
    pub delay: i64,
}

impl CspPath {
    fn from_edges(graph: &DiGraph, edges: Vec<EdgeId>) -> Self {
        let cost = edges.iter().map(|&e| graph.edge(e).cost).sum();
        let delay = edges.iter().map(|&e| graph.edge(e).delay).sum();
        CspPath { edges, cost, delay }
    }
}

/// Budgeted DP: `value[b][v]` = minimum `objective` over `s→v` walks with
/// `Σ budget ≤ b`, for `b = 0..=bound`. Zero-budget edges are handled with a
/// per-level Dijkstra pass (objectives must be nonnegative).
///
/// Returns `(value, parent)` where `parent[b][v] = (edge, b_prev)`.
struct BudgetDp {
    value: Vec<Vec<Option<i64>>>,
    parent: Vec<Vec<Option<(EdgeId, usize)>>>,
}

fn budget_dp(
    graph: &DiGraph,
    s: NodeId,
    bound: usize,
    budget_of: &dyn Fn(EdgeId) -> i64,
    objective_of: &dyn Fn(EdgeId) -> i64,
) -> BudgetDp {
    let n = graph.node_count();
    for (id, _) in graph.edge_iter() {
        assert!(budget_of(id) >= 0, "budgets must be nonnegative");
        assert!(objective_of(id) >= 0, "objectives must be nonnegative");
    }
    let mut value: Vec<Vec<Option<i64>>> = Vec::with_capacity(bound + 1);
    let mut parent: Vec<Vec<Option<(EdgeId, usize)>>> = Vec::with_capacity(bound + 1);

    for b in 0..=bound {
        // Initialize from carry-over and cross-level transitions.
        let mut val: Vec<Option<i64>> = if b == 0 {
            vec![None; n]
        } else {
            value[b - 1].clone()
        };
        let mut par: Vec<Option<(EdgeId, usize)>> = vec![None; n];
        val[s.index()] = Some(0);
        for (id, e) in graph.edge_iter() {
            let be = budget_of(id) as usize;
            if be >= 1 && be <= b {
                if let Some(vu) = value[b - be][e.src.index()] {
                    let cand = vu + objective_of(id);
                    if val[e.dst.index()].is_none_or(|x| cand < x) {
                        val[e.dst.index()] = Some(cand);
                        par[e.dst.index()] = Some((id, b - be));
                    }
                }
            }
        }
        // Within-level relaxation over zero-budget edges (Dijkstra flavor:
        // repeatedly settle the smallest tentative value).
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(i64, u32)>> = val
            .iter()
            .enumerate()
            .filter_map(|(v, x)| x.map(|x| std::cmp::Reverse((x, v as u32))))
            .collect();
        let mut done = vec![false; n];
        while let Some(std::cmp::Reverse((dv, v))) = heap.pop() {
            let v = NodeId(v);
            if done[v.index()] || val[v.index()] != Some(dv) {
                continue;
            }
            done[v.index()] = true;
            for &e in graph.out_edges(v) {
                if budget_of(e) == 0 {
                    let u = graph.edge(e).dst;
                    let cand = dv + objective_of(e);
                    if val[u.index()].is_none_or(|x| cand < x) {
                        val[u.index()] = Some(cand);
                        par[u.index()] = Some((e, b));
                        heap.push(std::cmp::Reverse((cand, u.0)));
                    }
                }
            }
        }
        value.push(val);
        parent.push(par);
    }
    BudgetDp { value, parent }
}

/// Reconstructs the path reaching `t` at level `b` of a [`budget_dp`] table.
fn recover(dp: &BudgetDp, graph: &DiGraph, s: NodeId, t: NodeId, mut b: usize) -> Vec<EdgeId> {
    let mut edges = Vec::new();
    let mut v = t;
    let mut guard = 0usize;
    while v != s {
        // Drop to the lowest level with the same value (carried entries have
        // no parent at this level).
        while b > 0 && dp.value[b - 1][v.index()] == dp.value[b][v.index()] {
            b -= 1;
        }
        let (e, bp) = dp.parent[b][v.index()].expect("dp parent chain intact");
        edges.push(e);
        v = graph.edge(e).src;
        b = bp;
        guard += 1;
        assert!(
            guard <= graph.edge_count() + dp.value.len(),
            "dp path recovery loop"
        );
    }
    edges.reverse();
    edges
}

/// Exact restricted shortest path: minimum-cost `s→t` path with total delay
/// at most `delay_bound`. Pseudo-polynomial: `O(D·m·log n)`.
///
/// Requires nonnegative costs and delays.
#[must_use]
pub fn constrained_shortest_path(
    graph: &DiGraph,
    s: NodeId,
    t: NodeId,
    delay_bound: i64,
) -> Option<CspPath> {
    assert!(delay_bound >= 0);
    let dp = budget_dp(
        graph,
        s,
        delay_bound as usize,
        &|e| graph.edge(e).delay,
        &|e| graph.edge(e).cost,
    );
    dp.value[delay_bound as usize][t.index()]?;
    let edges = recover(&dp, graph, s, t, delay_bound as usize);
    let p = CspPath::from_edges(graph, edges);
    debug_assert!(p.delay <= delay_bound);
    Some(p)
}

/// Integer geometric mean `⌊√(lb·ub)⌋`, clamped into `[lb, ub]`.
///
/// Computed with an exact `u128` integer square root: the `f64` route
/// (`((lb·ub) as f64).sqrt()`) loses precision once `lb·ub` exceeds 2^53,
/// and a midpoint rounded up past `⌊√(lb·ub)⌋` can violate the bracket
/// invariant (`2·mid < ub`) the Hassin/Larac-style shrink loop relies on —
/// stalling or misbisecting the search near `i64::MAX`.
fn geometric_midpoint(lb: i64, ub: i64) -> i64 {
    debug_assert!(0 < lb && lb <= ub);
    let mid = krsp_numeric::isqrt(lb as u128 * ub as u128) as i64;
    mid.clamp(lb, ub)
}

/// Lorenz–Raz style FPTAS for the restricted shortest path problem:
/// returns a path with `delay ≤ delay_bound` and
/// `cost ≤ (1 + eps_num/eps_den) · OPT`, or `None` if infeasible.
///
/// Runs in time polynomial in the graph size and `eps_den/eps_num`.
#[must_use]
pub fn rsp_fptas(
    graph: &DiGraph,
    s: NodeId,
    t: NodeId,
    delay_bound: i64,
    eps_num: u32,
    eps_den: u32,
) -> Option<CspPath> {
    assert!(eps_num > 0 && eps_den > 0, "epsilon must be positive");
    assert!(delay_bound >= 0);
    let n = graph.node_count() as i64;

    // Feasibility + bottleneck bounds: the smallest edge-cost threshold c*
    // whose subgraph contains a delay-feasible path gives OPT ∈ [c*, n·c*].
    // "Removed" edges get a finite sentinel weight strictly larger than any
    // real path delay *and* the budget, so they cannot appear on a path
    // that passes the budget check and sums cannot overflow.
    let sentinel = graph.total_delay().max(delay_bound).saturating_add(1);
    let min_delay_using = |threshold: i64| -> bool {
        let (dist, _) = dijkstra(graph, s, |e| {
            if graph.edge(e).cost <= threshold {
                graph.edge(e).delay
            } else {
                sentinel
            }
        });
        matches!(dist[t.index()], Some(d) if d <= delay_bound)
    };
    let mut costs: Vec<i64> = graph.edges().iter().map(|e| e.cost).collect();
    costs.push(0);
    costs.sort_unstable();
    costs.dedup();
    if !min_delay_using(*costs.last().unwrap()) {
        return None; // no delay-feasible path at all
    }
    // Binary search the threshold list.
    let mut lo = 0usize;
    let mut hi = costs.len() - 1;
    while lo < hi {
        let mid = (lo + hi) / 2;
        if min_delay_using(costs[mid]) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let cstar = costs[lo];
    if cstar == 0 {
        // A zero-cost feasible path exists: it is optimal; extract it via
        // the exact min-delay path over zero-cost edges.
        let (dist, pred) = dijkstra(graph, s, |e| {
            if graph.edge(e).cost == 0 {
                graph.edge(e).delay
            } else {
                sentinel
            }
        });
        let edges = crate::dijkstra::path_to(graph, &dist, &pred, t)?;
        let p = CspPath::from_edges(graph, edges);
        debug_assert_eq!(p.cost, 0);
        return Some(p);
    }
    let mut lb = cstar; // OPT ≥ lb
    let mut ub = n * cstar; // a feasible path of cost ≤ ub exists

    // Scaled test: does a delay-feasible path of cost ≤ c(1+ε0) exist?
    // (pass ⇒ such a path is produced; fail ⇒ OPT > c). ε0 = 1 here.
    let test = |c: i64| -> Option<CspPath> {
        // θ = c / (n+1); scaled cost c'(e) = floor(c(e)/θ); budget n+1.
        // For any ≤n-edge path: c(P)/θ − n ≤ c'(P) ≤ c(P)/θ.
        let theta_num = c;
        let theta_den = n + 1;
        let scaled = |e: EdgeId| -> i64 { graph.edge(e).cost * theta_den / theta_num };
        let budget = (n + 1) as usize; // floor(c/θ) = n+1
        let dp = budget_dp(
            graph,
            s,
            budget,
            &|e| scaled(e).min(budget as i64 + 1),
            &|e| graph.edge(e).delay,
        );
        let b = (0..=budget).find(|&b| dp.value[b][t.index()].is_some_and(|d| d <= delay_bound))?;
        let edges = recover(&dp, graph, s, t, b);
        Some(CspPath::from_edges(graph, edges))
    };

    // Geometric shrink until ub ≤ 4·lb. The test at the integer geometric
    // mean `c` either certifies OPT > c (fail ⇒ lb := c+1) or produces a
    // feasible path of cost ≤ 2c (pass ⇒ ub := 2c, using ε₀ = 1). While
    // ub > 4·lb, `2·⌊√(lb·ub)⌋ < ub`, so both branches strictly shrink the
    // bracket and the loop terminates in O(log log(ub/lb)) tests.
    while ub > 4 * lb {
        let c = geometric_midpoint(lb, ub);
        match test(c) {
            Some(p) => {
                debug_assert!(p.cost <= 2 * c, "test contract: cost ≤ (1+ε₀)·c");
                ub = ub.min((2 * c).max(lb));
            }
            None => {
                lb = c + 1;
            }
        }
        debug_assert!(lb <= ub);
    }

    // Final scaled DP with target ε: θ = lb·ε/(n+1).
    // scaled(e) = floor(c(e)/θ) = floor(c(e)·(n+1)·eps_den / (lb·eps_num)).
    let denom = lb as i128 * eps_num as i128;
    let scaled = |e: EdgeId| -> i64 {
        ((graph.edge(e).cost as i128 * (n as i128 + 1) * eps_den as i128) / denom) as i64
    };
    // Budget: c'(P*) ≤ OPT/θ ≤ ub·(n+1)·eps_den/(lb·eps_num) (+ slack n).
    let budget = ((ub as i128 * (n as i128 + 1) * eps_den as i128) / denom + n as i128 + 1)
        .min(i128::from(u32::MAX)) as usize;
    let dp = budget_dp(
        graph,
        s,
        budget,
        &|e| scaled(e).min(budget as i64 + 1),
        &|e| graph.edge(e).delay,
    );
    let b = (0..=budget).find(|&b| dp.value[b][t.index()].is_some_and(|d| d <= delay_bound))?;
    let edges = recover(&dp, graph, s, t, b);
    let p = CspPath::from_edges(graph, edges);
    debug_assert!(p.delay <= delay_bound);
    Some(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Cheap path is slow; fast path is pricey.
    fn tradeoff_graph() -> DiGraph {
        DiGraph::from_edges(
            4,
            &[
                (0, 1, 1, 10), // cheap+slow leg
                (1, 3, 1, 10),
                (0, 2, 10, 1), // fast+pricey leg
                (2, 3, 10, 1),
            ],
        )
    }

    #[test]
    fn exact_obeys_budget() {
        let g = tradeoff_graph();
        // Loose budget: cheap path.
        let p = constrained_shortest_path(&g, NodeId(0), NodeId(3), 20).unwrap();
        assert_eq!((p.cost, p.delay), (2, 20));
        // Tight budget: forced onto the fast path.
        let p = constrained_shortest_path(&g, NodeId(0), NodeId(3), 5).unwrap();
        assert_eq!((p.cost, p.delay), (20, 2));
        // Impossible budget.
        assert!(constrained_shortest_path(&g, NodeId(0), NodeId(3), 1).is_none());
    }

    #[test]
    fn exact_mixed_budget_uses_best_combination() {
        let g = DiGraph::from_edges(
            4,
            &[
                (0, 1, 1, 10),
                (1, 3, 1, 10), // cheap-slow: cost 2 delay 20
                (0, 2, 10, 1),
                (2, 3, 10, 1), // fast: cost 20 delay 2
                (1, 2, 0, 0),  // bridge allows half-and-half
            ],
        );
        // Budget 11: 0→1 (1,10) then bridge (0,0) then 2→3 (10,1) = (11, 11).
        let p = constrained_shortest_path(&g, NodeId(0), NodeId(3), 11).unwrap();
        assert_eq!((p.cost, p.delay), (11, 11));
    }

    #[test]
    fn zero_delay_edges_within_level() {
        let g = DiGraph::from_edges(4, &[(0, 1, 3, 0), (1, 2, 4, 0), (0, 2, 9, 0), (2, 3, 1, 0)]);
        let p = constrained_shortest_path(&g, NodeId(0), NodeId(3), 0).unwrap();
        assert_eq!((p.cost, p.delay), (8, 0));
    }

    #[test]
    fn unreachable_none() {
        let g = DiGraph::from_edges(3, &[(0, 1, 1, 1)]);
        assert!(constrained_shortest_path(&g, NodeId(0), NodeId(2), 100).is_none());
    }

    #[test]
    fn fptas_feasible_and_near_optimal() {
        let g = tradeoff_graph();
        let p = rsp_fptas(&g, NodeId(0), NodeId(3), 20, 1, 2).unwrap();
        assert!(p.delay <= 20);
        assert!(p.cost <= 3); // OPT = 2, (1+1/2)·2 = 3
        let p = rsp_fptas(&g, NodeId(0), NodeId(3), 5, 1, 2).unwrap();
        assert!(p.delay <= 5);
        assert!(p.cost <= 30); // OPT = 20
        assert!(rsp_fptas(&g, NodeId(0), NodeId(3), 1, 1, 2).is_none());
    }

    #[test]
    fn fptas_zero_cost_shortcut() {
        let g = DiGraph::from_edges(3, &[(0, 1, 0, 5), (1, 2, 0, 5), (0, 2, 7, 1)]);
        let p = rsp_fptas(&g, NodeId(0), NodeId(2), 10, 1, 10).unwrap();
        assert_eq!(p.cost, 0);
    }

    #[test]
    fn geometric_midpoint_is_exact_near_i64_max() {
        // lb·ub ≫ 2^53: the old f64 path rounded √(lb·ub) up past the true
        // floor (for lb = ub = i64::MAX it saturates to i64::MAX only by
        // accident of the `as` cast; one step down it misbisects).
        let m = i64::MAX;
        assert_eq!(geometric_midpoint(m, m), m);
        assert_eq!(geometric_midpoint(m - 1, m), m - 1);
        assert_eq!(geometric_midpoint(1, m), 3_037_000_499); // ⌊√(2^63−1)⌋
                                                             // Exactness: mid is the floor sqrt of the product whenever that
                                                             // floor lands inside [lb, ub].
        for (lb, ub) in [
            (m / 4, m),
            (m / 2, m - 1),
            ((1 << 31) + 7, (1 << 62) + 11),
            (3, m / 3),
        ] {
            let mid = geometric_midpoint(lb, ub);
            let prod = lb as u128 * ub as u128;
            let mid_u = mid as u128;
            assert!(mid_u * mid_u <= prod, "mid too big for ({lb}, {ub})");
            assert!(
                (mid_u + 1) * (mid_u + 1) > prod,
                "mid not the floor for ({lb}, {ub})"
            );
            assert!((lb..=ub).contains(&mid));
        }
        // The shrink-loop invariant: while ub > 4·lb, 2·mid < ub strictly.
        let (lb, ub) = (m / 8, m);
        assert!(2i128 * i128::from(geometric_midpoint(lb, ub)) < i128::from(ub));
    }

    fn arb_graph() -> impl Strategy<Value = (DiGraph, i64)> {
        (
            proptest::collection::vec((0u32..7, 0u32..7, 0i64..15, 0i64..15), 1..24),
            0i64..40,
        )
            .prop_map(|(edges, d)| {
                let list: Vec<_> = edges.into_iter().filter(|&(u, v, _, _)| u != v).collect();
                (DiGraph::from_edges(7, &list), d)
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_fptas_within_factor((g, d) in arb_graph()) {
            let exact = constrained_shortest_path(&g, NodeId(0), NodeId(6), d);
            let approx = rsp_fptas(&g, NodeId(0), NodeId(6), d, 1, 2);
            match (exact, approx) {
                (None, None) => {}
                (Some(e), Some(a)) => {
                    prop_assert!(a.delay <= d);
                    // cost ≤ (1 + 1/2) OPT, integer arithmetic:
                    prop_assert!(2 * a.cost <= 3 * e.cost,
                        "approx {} vs opt {}", a.cost, e.cost);
                }
                (e, a) => prop_assert!(false, "feasibility mismatch: exact={:?} approx={:?}", e.is_some(), a.is_some()),
            }
        }

        #[test]
        fn prop_exact_is_minimal_vs_enumeration((g, d) in arb_graph()) {
            // Brute force: DFS all simple paths, track best cost within D.
            #[allow(clippy::too_many_arguments)]
            fn dfs(g: &DiGraph, cur: NodeId, t: NodeId, visited: &mut Vec<bool>,
                   cost: i64, delay: i64, d: i64, best: &mut Option<i64>) {
                if delay > d { return; }
                if cur == t {
                    *best = Some(best.map_or(cost, |b: i64| b.min(cost)));
                    return;
                }
                for &e in g.out_edges(cur) {
                    let r = g.edge(e);
                    if !visited[r.dst.index()] {
                        visited[r.dst.index()] = true;
                        dfs(g, r.dst, t, visited, cost + r.cost, delay + r.delay, d, best);
                        visited[r.dst.index()] = false;
                    }
                }
            }
            let mut best = None;
            let mut visited = vec![false; g.node_count()];
            visited[0] = true;
            dfs(&g, NodeId(0), NodeId(6), &mut visited, 0, 0, d, &mut best);
            let ours = constrained_shortest_path(&g, NodeId(0), NodeId(6), d).map(|p| p.cost);
            prop_assert_eq!(ours, best);
        }
    }
}
