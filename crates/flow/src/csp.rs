//! Restricted (constrained) shortest paths — the `k = 1` case of kRSP.
//!
//! * [`constrained_shortest_path`] — exact pseudo-polynomial DP: the
//!   minimum-cost `st`-path with delay at most `D`.
//! * [`rsp_fptas`] — the Lorenz–Raz style `(1+ε)` FPTAS [17]: cost at most
//!   `(1+ε)·OPT`, delay at most `D`, polynomial in `1/ε`. This is also the
//!   scaling template the paper's Theorem 4 applies to Algorithm 1.
//!
//! Both are used as the `k = 1` baseline (`greedy_rsp` runs them per path).
//!
//! ## The flat kernel
//!
//! The budgeted DP is the solver's hottest loop: the FPTAS re-runs it for
//! every probe of its geometric bisection, and every caller above (greedy
//! RSP, the service ladder) re-runs the FPTAS. The kernel therefore avoids
//! all steady-state allocation and indirection (DESIGN.md §4.12):
//!
//! * the value table is one flat row-major `i64` buffer (`i64::MAX` =
//!   unreachable), not a `Vec<Vec<Option<i64>>>`; level carry-over is a
//!   `memcpy`, not an `Option` clone;
//! * parents are two compact `u32` arrays (edge id + previous level);
//! * the weight accessors are generic `impl Fn` parameters, monomorphized
//!   at each call site — no `&dyn Fn` dispatch per edge relaxation — and
//!   evaluated once per edge up front, not once per (level, edge);
//! * edges are bucketed by budget value once per run: positive-budget edges
//!   live in a flat array (edges whose budget exceeds the bound are dropped
//!   entirely), zero-budget edges in a per-node CSR, so the within-level
//!   Dijkstra pass is skipped outright when no zero-budget edge exists and
//!   otherwise seeds its heap only with nodes that can propagate;
//! * every buffer lives in a caller-owned [`DpScratch`], so the bisection
//!   loop — and repeated solves above it — reuse one allocation.
//!
//! The pre-rewrite kernel is preserved in [`crate::reference`] and the test
//! suite pins this one to it bit-for-bit (values, tie-breaking, recovered
//! paths).

use crate::cancel::CancelToken;
use crate::dijkstra::dijkstra;
use krsp_failpoint::fail_point;
use krsp_graph::{DiGraph, EdgeId, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A cost/delay-annotated simple path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CspPath {
    /// Edge sequence from `s` to `t`.
    pub edges: Vec<EdgeId>,
    /// Total cost at original weights.
    pub cost: i64,
    /// Total delay at original weights.
    pub delay: i64,
}

impl CspPath {
    pub(crate) fn from_edges(graph: &DiGraph, edges: Vec<EdgeId>) -> Self {
        let cost = edges.iter().map(|&e| graph.edge(e).cost).sum();
        let delay = edges.iter().map(|&e| graph.edge(e).delay).sum();
        CspPath { edges, cost, delay }
    }
}

/// "Unreachable" sentinel in the flat value table.
const UNREACHED: i64 = i64::MAX;
/// "No parent" sentinel in the flat parent table.
const NO_PARENT: u32 = u32::MAX;

/// A positive-budget edge, predigested for the relaxation loop.
#[derive(Clone, Copy)]
struct PosEdge {
    /// Budget value (`≥ 1`, `≤ bound`).
    budget: u32,
    /// Tail node index.
    src: u32,
    /// Head node index.
    dst: u32,
    /// Objective value.
    obj: i64,
    /// Original edge id (for parents).
    id: u32,
}

/// A zero-budget edge in the per-node CSR.
#[derive(Clone, Copy)]
struct ZeroEdge {
    /// Head node index.
    dst: u32,
    /// Objective value.
    obj: i64,
    /// Original edge id (for parents).
    id: u32,
}

/// Caller-owned scratch arena for the budgeted DP.
///
/// Holds the flat value/parent tables, the edge buckets, and the
/// within-level heap. Create one per solving context and thread it through
/// repeated [`constrained_shortest_path_with`] / [`rsp_fptas_with`] calls:
/// after warm-up, the kernel allocates nothing. A single scratch adapts to
/// any graph/bound size (buffers grow monotonically, capacity is retained).
#[derive(Default)]
pub struct DpScratch {
    /// Flat `(bound+1) × n` value table, row-major by level.
    value: Vec<i64>,
    /// Parent edge id per `(level, node)`; `NO_PARENT` = none.
    par_edge: Vec<u32>,
    /// Parent level per `(level, node)` (meaningful iff `par_edge` set).
    par_level: Vec<u32>,
    /// Positive-budget edges with budget ≤ bound, in edge-id order.
    pos: Vec<PosEdge>,
    /// Zero-budget out-edges, CSR payload (tail-node grouped).
    zero: Vec<ZeroEdge>,
    /// CSR offsets: node `v`'s zero-budget out-edges are
    /// `zero[zero_start[v]..zero_start[v+1]]`.
    zero_start: Vec<u32>,
    /// Per-edge budget cache (one accessor call per edge per run).
    ebud: Vec<i64>,
    /// Per-edge objective cache.
    eobj: Vec<i64>,
    /// Within-level Dijkstra heap, reused across levels.
    heap: BinaryHeap<Reverse<(i64, u32)>>,
    /// Settled stamps for the within-level pass (`== gen` means settled).
    settled: Vec<u64>,
    /// Current settle generation.
    gen: u64,
    /// Node count of the last run.
    n: usize,
    /// Level count (`bound + 1`) of the last run.
    levels: usize,
    /// Cooperative-cancellation token polled between DP levels. Defaults
    /// to [`CancelToken::never`]; riding in the scratch keeps the hot-path
    /// signatures stable.
    cancel: CancelToken,
}

impl DpScratch {
    /// An empty scratch; buffers are sized lazily on first use.
    #[must_use]
    pub fn new() -> Self {
        DpScratch::default()
    }

    /// Installs the cancellation token future DP runs poll; pass
    /// [`CancelToken::never`] to make the scratch uncancellable again.
    pub fn set_cancel(&mut self, cancel: CancelToken) {
        self.cancel = cancel;
    }

    /// The currently installed cancellation token.
    #[must_use]
    pub fn cancel(&self) -> &CancelToken {
        &self.cancel
    }

    #[inline]
    fn value_at(&self, b: usize, v: NodeId) -> i64 {
        self.value[b * self.n + v.index()]
    }
}

/// True when node `v` has at least one outgoing zero-budget edge.
#[inline]
fn zero_tail(zero_start: &[u32], v: u32) -> bool {
    zero_start[v as usize] < zero_start[v as usize + 1]
}

/// Borrowed edge buckets for one DP sweep: either the scratch's own
/// (single-query path) or a shared [`TopoDigest`]'s (batch path).
struct Buckets<'a> {
    /// Positive-budget edges with budget ≤ bound, in edge-id order.
    pos: &'a [PosEdge],
    /// Zero-budget out-edges, CSR payload (tail-node grouped).
    zero: &'a [ZeroEdge],
    /// CSR offsets over `zero`.
    zero_start: &'a [u32],
}

/// Destination buffers for [`digest_buckets`]: either a scratch arena's
/// fields (single-query path) or a fresh [`TopoDigest`]'s vectors (batch
/// path). Bundled so both call sites lend the same shape.
struct BucketBufs<'a> {
    ebud: &'a mut Vec<i64>,
    eobj: &'a mut Vec<i64>,
    pos: &'a mut Vec<PosEdge>,
    zero: &'a mut Vec<ZeroEdge>,
    zero_start: &'a mut Vec<u32>,
}

/// Builds the edge buckets the DP sweep relaxes over: one accessor call per
/// edge (cached in `ebud`/`eobj`), positive-budget edges with budget ≤
/// `bound` into `pos` in edge-id order, zero-budget edges into a per-node
/// CSR in out-edge order. Shared by [`budget_dp`] (per-run buckets in the
/// scratch) and [`TopoDigest::build`] (buckets built once per topology), so
/// the two paths bucket identically by construction.
fn digest_buckets(
    graph: &DiGraph,
    bound: usize,
    budget_of: impl Fn(EdgeId) -> i64,
    objective_of: impl Fn(EdgeId) -> i64,
    out: BucketBufs<'_>,
) {
    let BucketBufs {
        ebud,
        eobj,
        pos,
        zero,
        zero_start,
    } = out;
    ebud.clear();
    eobj.clear();
    pos.clear();
    for (id, e) in graph.edge_iter() {
        let b = budget_of(id);
        let o = objective_of(id);
        assert!(b >= 0, "budgets must be nonnegative");
        assert!(o >= 0, "objectives must be nonnegative");
        ebud.push(b);
        eobj.push(o);
        if b >= 1 && b <= bound as i64 {
            pos.push(PosEdge {
                budget: b as u32,
                src: e.src.0,
                dst: e.dst.0,
                obj: o,
                id: id.0,
            });
        }
    }
    // Zero-budget CSR, grouped by tail in out-edge order (the order the
    // reference kernel relaxes them in).
    zero.clear();
    zero_start.clear();
    zero_start.reserve(graph.node_count() + 1);
    for v in graph.node_iter() {
        zero_start.push(zero.len() as u32);
        for &e in graph.out_edges(v) {
            if ebud[e.index()] == 0 {
                zero.push(ZeroEdge {
                    dst: graph.edge(e).dst.0,
                    obj: eobj[e.index()],
                    id: e.0,
                });
            }
        }
    }
    zero_start.push(zero.len() as u32);
}

/// Predigested edge buckets for one fixed `(graph, budget, objective,
/// bound)` shape, reusable across any number of DP runs.
///
/// The digest is the batch plane's shared read-only half: build it once per
/// topology with [`TopoDigest::delay_cost`], then answer many `(s, t, D)`
/// queries through [`constrained_shortest_path_digested`] /
/// [`constrained_shortest_paths_digested`] without re-walking the edge list
/// per query. Invariants (asserted at query time):
///
/// * the digest must have been built from the *same* graph the query runs
///   on (node and edge counts are checked; weights are the builder's
///   responsibility — a digest never outlives a graph mutation);
/// * every query bound must be ≤ the digest's `bound`. The relaxation loop
///   skips edges whose budget exceeds the current level, and levels are
///   computed bottom-up, so a sweep truncated at a smaller bound is
///   bit-identical to a dedicated [`budget_dp`] run at that bound.
pub struct TopoDigest {
    pos: Vec<PosEdge>,
    zero: Vec<ZeroEdge>,
    zero_start: Vec<u32>,
    n: usize,
    m: usize,
    bound: usize,
    /// Topology version this digest describes; 0 for a fresh build, parent
    /// epoch + 1 for a digest derived through [`TopoDigest::evolve`].
    epoch: u64,
    /// Edge ids whose weights changed vs. the parent epoch (empty at epoch
    /// 0). This is the compact delta the cache-invalidation sweep consumes.
    delta: Vec<u32>,
}

impl TopoDigest {
    /// Digest for the exact restricted-shortest-path shape: budget = edge
    /// delay, objective = edge cost, usable for any query with
    /// `delay_bound ≤ max_delay_bound`.
    ///
    /// # Panics
    /// Panics when `max_delay_bound` is negative or any weight is negative.
    #[must_use]
    pub fn delay_cost(graph: &DiGraph, max_delay_bound: i64) -> TopoDigest {
        assert!(max_delay_bound >= 0, "delay bound must be nonnegative");
        TopoDigest::build(
            graph,
            max_delay_bound as usize,
            |e| graph.edge(e).delay,
            |e| graph.edge(e).cost,
        )
    }

    fn build(
        graph: &DiGraph,
        bound: usize,
        budget_of: impl Fn(EdgeId) -> i64,
        objective_of: impl Fn(EdgeId) -> i64,
    ) -> TopoDigest {
        let (mut ebud, mut eobj) = (Vec::new(), Vec::new());
        let (mut pos, mut zero, mut zero_start) = (Vec::new(), Vec::new(), Vec::new());
        digest_buckets(
            graph,
            bound,
            budget_of,
            objective_of,
            BucketBufs {
                ebud: &mut ebud,
                eobj: &mut eobj,
                pos: &mut pos,
                zero: &mut zero,
                zero_start: &mut zero_start,
            },
        );
        TopoDigest {
            pos,
            zero,
            zero_start,
            n: graph.node_count(),
            m: graph.edge_count(),
            bound,
            epoch: 0,
            delta: Vec::new(),
        }
    }

    /// The largest query bound this digest supports.
    #[must_use]
    pub fn bound(&self) -> usize {
        self.bound
    }

    /// The topology epoch this digest was built for (0 = fresh build).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Edge ids whose weights changed vs. the parent epoch.
    #[must_use]
    pub fn delta(&self) -> &[u32] {
        &self.delta
    }

    /// Derives the digest for the next topology epoch from a weight-only
    /// update, patching edge buckets in place instead of re-walking the
    /// whole edge list.
    ///
    /// `graph` is the *new* graph (same structure as the one this digest was
    /// built from — typically produced by [`DiGraph::with_updates`]) and
    /// `changed` lists the edges whose cost/delay differ from the parent
    /// epoch. Only valid for digests built with [`TopoDigest::delay_cost`]
    /// (budget = delay, objective = cost). When a change moves an edge
    /// across bucket classes (zero ↔ positive ↔ above-bound) the CSR layout
    /// shifts, so the digest falls back to a full rebuild — the result is
    /// identical either way, only the construction cost differs.
    ///
    /// # Panics
    /// Panics when the graph shape differs from the digest's, or any new
    /// weight is negative.
    #[must_use]
    pub fn evolve(&self, graph: &DiGraph, changed: &[EdgeId]) -> TopoDigest {
        self.check_graph(graph);
        let epoch = self.epoch + 1;
        let delta: Vec<u32> = changed.iter().map(|e| e.0).collect();
        let rebuild = |epoch: u64, delta: Vec<u32>| {
            let mut d = TopoDigest::delay_cost(graph, self.bound as i64);
            d.epoch = epoch;
            d.delta = delta;
            d
        };
        let mut next = TopoDigest {
            pos: self.pos.clone(),
            zero: self.zero.clone(),
            zero_start: self.zero_start.clone(),
            n: self.n,
            m: self.m,
            bound: self.bound,
            epoch,
            delta: delta.clone(),
        };
        for &e in changed {
            let rec = graph.edge(e);
            let (b, o) = (rec.delay, rec.cost);
            assert!(b >= 0, "budgets must be nonnegative");
            assert!(o >= 0, "objectives must be nonnegative");
            // `pos` is in edge-id order by construction, so membership is a
            // binary search away.
            let in_pos = next.pos.binary_search_by_key(&e.0, |p| p.id);
            let zlo = next.zero_start[rec.src.index()] as usize;
            let zhi = next.zero_start[rec.src.index() + 1] as usize;
            let in_zero = next.zero[zlo..zhi].iter().position(|z| z.id == e.0);
            if b >= 1 && b <= self.bound as i64 {
                match (in_pos, in_zero) {
                    (Ok(i), None) => {
                        next.pos[i].budget = b as u32;
                        next.pos[i].obj = o;
                    }
                    // was zero-budget or above-bound: bucket class changed
                    _ => return rebuild(epoch, delta),
                }
            } else if b == 0 {
                match (in_pos, in_zero) {
                    (Err(_), Some(k)) => next.zero[zlo + k].obj = o,
                    _ => return rebuild(epoch, delta),
                }
            } else {
                // b > bound: the edge must be in neither bucket.
                if in_pos.is_ok() || in_zero.is_some() {
                    return rebuild(epoch, delta);
                }
            }
        }
        next
    }

    #[inline]
    fn buckets(&self) -> Buckets<'_> {
        Buckets {
            pos: &self.pos,
            zero: &self.zero,
            zero_start: &self.zero_start,
        }
    }

    /// Asserts the digest was built from a graph of this shape.
    fn check_graph(&self, graph: &DiGraph) {
        assert_eq!(self.n, graph.node_count(), "digest/graph node mismatch");
        assert_eq!(self.m, graph.edge_count(), "digest/graph edge mismatch");
    }
}

/// Budgeted DP over the scratch arena: `value[b][v]` = minimum `objective`
/// over `s→v` walks with `Σ budget ≤ b`, for `b = 0..=bound`. Zero-budget
/// edges are handled with a per-level Dijkstra pass over the zero-edge CSR
/// (objectives must be nonnegative).
///
/// Relaxation order — positive edges in id order per level, then the
/// smallest-value-first zero pass — matches `reference::budget_dp` exactly,
/// so values, parents, and recovered paths are bit-identical to the 2-D
/// oracle.
///
/// Returns `true` when every level was computed; `false` when the
/// scratch's [`CancelToken`] tripped mid-run (the value table is then
/// partial and must not be read).
#[must_use]
fn budget_dp(
    scratch: &mut DpScratch,
    graph: &DiGraph,
    s: NodeId,
    bound: usize,
    budget_of: impl Fn(EdgeId) -> i64,
    objective_of: impl Fn(EdgeId) -> i64,
) -> bool {
    let n = graph.node_count();
    // Predigest the weights: one accessor call per edge, validated once.
    digest_buckets(
        graph,
        bound,
        budget_of,
        objective_of,
        BucketBufs {
            ebud: &mut scratch.ebud,
            eobj: &mut scratch.eobj,
            pos: &mut scratch.pos,
            zero: &mut scratch.zero,
            zero_start: &mut scratch.zero_start,
        },
    );
    // Lend the scratch its own buckets for the sweep (moved out and back so
    // the arena keeps its capacity; the sweep needs the scratch mutably).
    let pos = std::mem::take(&mut scratch.pos);
    let zero = std::mem::take(&mut scratch.zero);
    let zero_start = std::mem::take(&mut scratch.zero_start);
    let complete = dp_sweep(
        scratch,
        &Buckets {
            pos: &pos,
            zero: &zero,
            zero_start: &zero_start,
        },
        n,
        s,
        bound + 1,
    );
    scratch.pos = pos;
    scratch.zero = zero;
    scratch.zero_start = zero_start;
    complete
}

/// The DP loop proper, over already-built buckets: fills the scratch's
/// flat value/parent tables for levels `0..levels`. The buckets may be the
/// scratch's own ([`budget_dp`]) or a shared [`TopoDigest`]'s; either way
/// the relaxation skips edges whose budget exceeds the current level, so
/// buckets built at any bound ≥ `levels - 1` produce identical tables.
#[must_use]
fn dp_sweep(
    scratch: &mut DpScratch,
    buckets: &Buckets<'_>,
    n: usize,
    s: NodeId,
    levels: usize,
) -> bool {
    fail_point!("csp.dp", |_msg| false);
    let cancel = scratch.cancel.clone();
    if cancel.is_cancelled() {
        return false;
    }
    scratch.n = n;
    scratch.levels = levels;
    let has_zero = !buckets.zero.is_empty();

    // Flat tables. `resize` keeps capacity across runs; rows are written
    // level by level below, so no global fill is needed.
    scratch.value.clear();
    scratch.value.resize(levels * n, UNREACHED);
    scratch.par_edge.clear();
    scratch.par_edge.resize(levels * n, NO_PARENT);
    scratch.par_level.clear();
    scratch.par_level.resize(levels * n, 0);
    if scratch.settled.len() < n {
        scratch.settled.resize(n, 0);
    }

    for b in 0..levels {
        // Poll every 32 levels: frequent enough to stop a runaway scaled
        // DP (levels are O(m) work each), rare enough to stay off the
        // profile.
        if b & 31 == 0 && cancel.is_cancelled() {
            return false;
        }
        dp_level(scratch, buckets, n, s, b, has_zero);
    }
    true
}

/// Relaxes one DP level `b`: carry-over from level `b−1`, positive-budget
/// transitions in edge-id order, then the within-level zero-budget pass.
/// Level `b` depends only on levels `≤ b`, so sweeps may stop after any
/// prefix of levels and the computed rows match a full sweep bit-for-bit.
fn dp_level(
    scratch: &mut DpScratch,
    buckets: &Buckets<'_>,
    n: usize,
    s: NodeId,
    b: usize,
    has_zero: bool,
) {
    let row = b * n;
    if b > 0 {
        // Carry-over: start from the previous level (one memcpy).
        scratch.value.copy_within((row - n)..row, row);
    }
    scratch.value[row + s.index()] = 0;
    // Cross-level transitions, in edge-id order (ties must resolve as
    // in the reference kernel).
    for pe in buckets.pos {
        if pe.budget as usize > b {
            continue;
        }
        let vu = scratch.value[(b - pe.budget as usize) * n + pe.src as usize];
        if vu == UNREACHED {
            continue;
        }
        let cand = vu + pe.obj;
        let slot = row + pe.dst as usize;
        if cand < scratch.value[slot] {
            scratch.value[slot] = cand;
            scratch.par_edge[slot] = pe.id;
            scratch.par_level[slot] = (b - pe.budget as usize) as u32;
        }
    }
    if !has_zero {
        return;
    }
    // Within-level relaxation over zero-budget edges (Dijkstra flavor).
    // Only nodes with outgoing zero-budget edges can propagate, so only
    // they enter the heap; everything else is pure overhead.
    scratch.gen += 1;
    let gen = scratch.gen;
    scratch.heap.clear();
    for v in 0..n as u32 {
        if zero_tail(buckets.zero_start, v) && scratch.value[row + v as usize] != UNREACHED {
            scratch
                .heap
                .push(Reverse((scratch.value[row + v as usize], v)));
        }
    }
    while let Some(Reverse((dv, v))) = scratch.heap.pop() {
        if scratch.settled[v as usize] == gen || scratch.value[row + v as usize] != dv {
            continue;
        }
        scratch.settled[v as usize] = gen;
        let (lo, hi) = (
            buckets.zero_start[v as usize] as usize,
            buckets.zero_start[v as usize + 1] as usize,
        );
        for i in lo..hi {
            let ze = buckets.zero[i];
            let cand = dv + ze.obj;
            let slot = row + ze.dst as usize;
            if cand < scratch.value[slot] {
                scratch.value[slot] = cand;
                scratch.par_edge[slot] = ze.id;
                scratch.par_level[slot] = b as u32;
                if zero_tail(buckets.zero_start, ze.dst) {
                    scratch.heap.push(Reverse((cand, ze.dst)));
                }
            }
        }
    }
}

/// Outcome of a target-aware DP sweep ([`dp_sweep_until`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SweepOutcome {
    /// First level at which `t` is reachable with value ≤ the feasibility
    /// bound.
    Found(usize),
    /// All levels computed; no level qualified.
    Exhausted,
    /// The scratch's [`CancelToken`] tripped mid-run (table is partial).
    Cancelled,
}

/// [`dp_sweep`] with an early exit: stops at the first level `b` whose
/// value at `t` is reachable and at most `feas_bound`. Because level `b`
/// depends only on levels `≤ b`, the returned level — and the parent chain
/// behind it — is exactly the one a full sweep plus a bottom-up scan finds;
/// the sweep just skips the levels above it.
#[must_use]
fn dp_sweep_until(
    scratch: &mut DpScratch,
    buckets: &Buckets<'_>,
    n: usize,
    s: NodeId,
    levels: usize,
    t: NodeId,
    feas_bound: i64,
) -> SweepOutcome {
    fail_point!("csp.dp", |_msg| SweepOutcome::Cancelled);
    let cancel = scratch.cancel.clone();
    if cancel.is_cancelled() {
        return SweepOutcome::Cancelled;
    }
    scratch.n = n;
    scratch.levels = levels;
    let has_zero = !buckets.zero.is_empty();
    scratch.value.clear();
    scratch.value.resize(levels * n, UNREACHED);
    scratch.par_edge.clear();
    scratch.par_edge.resize(levels * n, NO_PARENT);
    scratch.par_level.clear();
    scratch.par_level.resize(levels * n, 0);
    if scratch.settled.len() < n {
        scratch.settled.resize(n, 0);
    }
    for b in 0..levels {
        if b & 31 == 0 && cancel.is_cancelled() {
            return SweepOutcome::Cancelled;
        }
        dp_level(scratch, buckets, n, s, b, has_zero);
        let v = scratch.value[b * n + t.index()];
        if v != UNREACHED && v <= feas_bound {
            return SweepOutcome::Found(b);
        }
    }
    SweepOutcome::Exhausted
}

/// [`budget_dp`] with the early exit of [`dp_sweep_until`]: digests the
/// weights into the scratch buckets, then sweeps until the first level
/// whose value at `t` is at most `feas_bound`.
#[must_use]
#[allow(clippy::too_many_arguments)]
fn budget_dp_until(
    scratch: &mut DpScratch,
    graph: &DiGraph,
    s: NodeId,
    bound: usize,
    budget_of: impl Fn(EdgeId) -> i64,
    objective_of: impl Fn(EdgeId) -> i64,
    t: NodeId,
    feas_bound: i64,
) -> SweepOutcome {
    let n = graph.node_count();
    digest_buckets(
        graph,
        bound,
        budget_of,
        objective_of,
        BucketBufs {
            ebud: &mut scratch.ebud,
            eobj: &mut scratch.eobj,
            pos: &mut scratch.pos,
            zero: &mut scratch.zero,
            zero_start: &mut scratch.zero_start,
        },
    );
    let pos = std::mem::take(&mut scratch.pos);
    let zero = std::mem::take(&mut scratch.zero);
    let zero_start = std::mem::take(&mut scratch.zero_start);
    let outcome = dp_sweep_until(
        scratch,
        &Buckets {
            pos: &pos,
            zero: &zero,
            zero_start: &zero_start,
        },
        n,
        s,
        bound + 1,
        t,
        feas_bound,
    );
    scratch.pos = pos;
    scratch.zero = zero;
    scratch.zero_start = zero_start;
    outcome
}

/// Reconstructs the path reaching `t` at level `b` of a [`budget_dp`] run.
fn recover(
    scratch: &DpScratch,
    graph: &DiGraph,
    s: NodeId,
    t: NodeId,
    mut b: usize,
) -> Vec<EdgeId> {
    let n = scratch.n;
    let mut edges = Vec::new();
    let mut v = t;
    let mut guard = 0usize;
    while v != s {
        // Drop to the lowest level with the same value (carried entries have
        // no parent at this level).
        while b > 0 && scratch.value[(b - 1) * n + v.index()] == scratch.value[b * n + v.index()] {
            b -= 1;
        }
        let slot = b * n + v.index();
        let e = scratch.par_edge[slot];
        assert!(e != NO_PARENT, "dp parent chain intact");
        let e = EdgeId(e);
        edges.push(e);
        v = graph.edge(e).src;
        b = scratch.par_level[slot] as usize;
        guard += 1;
        assert!(
            guard <= graph.edge_count() + scratch.levels,
            "dp path recovery loop"
        );
    }
    edges.reverse();
    edges
}

/// Exact restricted shortest path: minimum-cost `s→t` path with total delay
/// at most `delay_bound`. Pseudo-polynomial: `O(D·m·log n)`.
///
/// Requires nonnegative costs and delays. Allocates a fresh [`DpScratch`];
/// use [`constrained_shortest_path_with`] to amortize across calls.
#[must_use]
pub fn constrained_shortest_path(
    graph: &DiGraph,
    s: NodeId,
    t: NodeId,
    delay_bound: i64,
) -> Option<CspPath> {
    constrained_shortest_path_with(graph, s, t, delay_bound, &mut DpScratch::new())
}

/// [`constrained_shortest_path`] over a caller-owned scratch arena.
#[must_use]
pub fn constrained_shortest_path_with(
    graph: &DiGraph,
    s: NodeId,
    t: NodeId,
    delay_bound: i64,
    scratch: &mut DpScratch,
) -> Option<CspPath> {
    assert!(delay_bound >= 0);
    let complete = budget_dp(
        scratch,
        graph,
        s,
        delay_bound as usize,
        |e| graph.edge(e).delay,
        |e| graph.edge(e).cost,
    );
    if !complete || scratch.value_at(delay_bound as usize, t) == UNREACHED {
        return None;
    }
    let edges = recover(scratch, graph, s, t, delay_bound as usize);
    let p = CspPath::from_edges(graph, edges);
    debug_assert!(p.delay <= delay_bound);
    Some(p)
}

/// One restricted-shortest-path query against a shared [`TopoDigest`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CspQuery {
    /// Source node.
    pub s: NodeId,
    /// Target node.
    pub t: NodeId,
    /// Delay budget; must be `≤` the digest's bound.
    pub delay_bound: i64,
}

/// [`constrained_shortest_path_with`] against a prebuilt [`TopoDigest`]:
/// skips the per-call edge walk and bucket build. Bit-identical to the
/// undigested call for any `delay_bound ≤ digest.bound()`.
///
/// # Panics
/// Panics when the digest does not match `graph`'s shape, or
/// `delay_bound` is negative or exceeds the digest bound.
#[must_use]
pub fn constrained_shortest_path_digested(
    graph: &DiGraph,
    digest: &TopoDigest,
    s: NodeId,
    t: NodeId,
    delay_bound: i64,
    scratch: &mut DpScratch,
) -> Option<CspPath> {
    digest.check_graph(graph);
    assert!(delay_bound >= 0, "delay bound must be nonnegative");
    assert!(
        delay_bound as usize <= digest.bound,
        "query bound {delay_bound} exceeds digest bound {}",
        digest.bound
    );
    let bound = delay_bound as usize;
    if !dp_sweep(scratch, &digest.buckets(), digest.n, s, bound + 1) {
        return None;
    }
    if scratch.value_at(bound, t) == UNREACHED {
        return None;
    }
    let edges = recover(scratch, graph, s, t, bound);
    let p = CspPath::from_edges(graph, edges);
    debug_assert!(p.delay <= delay_bound);
    Some(p)
}

/// Answers a block of queries against one shared [`TopoDigest`], sharing
/// DP sweeps across queries with the same source.
///
/// Queries are grouped by source in first-appearance order; each group
/// runs **one** sweep to the group's largest bound. The value table at any
/// level `b` depends only on levels `≤ b` (and the per-level relaxation
/// skips edges whose budget exceeds the level), so every query reads the
/// same cells — and recovers the same parents — as a dedicated
/// [`constrained_shortest_path_with`] run at its own bound: results are
/// bit-identical, query by query.
///
/// A tripped [`CancelToken`] in the scratch stops the remaining sweeps;
/// unanswered queries come back `None`, like the single-query calls.
///
/// # Panics
/// Panics when the digest does not match `graph`'s shape, or any query
/// bound is negative or exceeds the digest bound.
#[must_use]
pub fn constrained_shortest_paths_digested(
    graph: &DiGraph,
    digest: &TopoDigest,
    queries: &[CspQuery],
    scratch: &mut DpScratch,
) -> Vec<Option<CspPath>> {
    digest.check_graph(graph);
    let mut groups: Vec<(NodeId, Vec<usize>)> = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        assert!(q.delay_bound >= 0, "delay bound must be nonnegative");
        assert!(
            q.delay_bound as usize <= digest.bound,
            "query bound {} exceeds digest bound {}",
            q.delay_bound,
            digest.bound
        );
        match groups.iter_mut().find(|(s, _)| *s == q.s) {
            Some((_, idxs)) => idxs.push(i),
            None => groups.push((q.s, vec![i])),
        }
    }
    let mut out: Vec<Option<CspPath>> = vec![None; queries.len()];
    for (s, idxs) in groups {
        let max_bound = idxs
            .iter()
            .map(|&i| queries[i].delay_bound as usize)
            .max()
            .expect("group is nonempty");
        if !dp_sweep(scratch, &digest.buckets(), digest.n, s, max_bound + 1) {
            break;
        }
        for &i in &idxs {
            let q = &queries[i];
            let bound = q.delay_bound as usize;
            if scratch.value_at(bound, q.t) == UNREACHED {
                continue;
            }
            let edges = recover(scratch, graph, s, q.t, bound);
            let p = CspPath::from_edges(graph, edges);
            debug_assert!(p.delay <= q.delay_bound);
            out[i] = Some(p);
        }
    }
    out
}

/// Integer geometric mean `⌊√(lb·ub)⌋`, clamped into `[lb, ub]`.
///
/// Computed with an exact `u128` integer square root: the `f64` route
/// (`((lb·ub) as f64).sqrt()`) loses precision once `lb·ub` exceeds 2^53,
/// and a midpoint rounded up past `⌊√(lb·ub)⌋` can violate the bracket
/// invariant (`2·mid < ub`) the Hassin/Larac-style shrink loop relies on —
/// stalling or misbisecting the search near `i64::MAX`.
pub(crate) fn geometric_midpoint(lb: i64, ub: i64) -> i64 {
    debug_assert!(0 < lb && lb <= ub);
    let mid = krsp_numeric::isqrt(lb as u128 * ub as u128) as i64;
    mid.clamp(lb, ub)
}

/// Lorenz–Raz style FPTAS for the restricted shortest path problem:
/// returns a path with `delay ≤ delay_bound` and
/// `cost ≤ (1 + eps_num/eps_den) · OPT`, or `None` if infeasible.
///
/// Runs in time polynomial in the graph size and `eps_den/eps_num`.
/// Allocates a fresh [`DpScratch`]; use [`rsp_fptas_with`] to amortize
/// across calls.
#[must_use]
pub fn rsp_fptas(
    graph: &DiGraph,
    s: NodeId,
    t: NodeId,
    delay_bound: i64,
    eps_num: u32,
    eps_den: u32,
) -> Option<CspPath> {
    rsp_fptas_with(
        graph,
        s,
        t,
        delay_bound,
        eps_num,
        eps_den,
        &mut DpScratch::new(),
    )
}

/// [`rsp_fptas`] over a caller-owned scratch arena: every DP probe of the
/// geometric bisection reuses the same buffers.
#[must_use]
pub fn rsp_fptas_with(
    graph: &DiGraph,
    s: NodeId,
    t: NodeId,
    delay_bound: i64,
    eps_num: u32,
    eps_den: u32,
    scratch: &mut DpScratch,
) -> Option<CspPath> {
    assert!(eps_num > 0 && eps_den > 0, "epsilon must be positive");
    assert!(delay_bound >= 0);
    let n = graph.node_count() as i64;

    // Feasibility + bottleneck bounds: the smallest edge-cost threshold c*
    // whose subgraph contains a delay-feasible path gives OPT ∈ [c*, n·c*].
    // "Removed" edges get a finite sentinel weight strictly larger than any
    // real path delay *and* the budget, so they cannot appear on a path
    // that passes the budget check and sums cannot overflow.
    let sentinel = graph.total_delay().max(delay_bound).saturating_add(1);
    let min_delay_using = |threshold: i64| -> bool {
        let (dist, _) = dijkstra(graph, s, |e| {
            if graph.edge(e).cost <= threshold {
                graph.edge(e).delay
            } else {
                sentinel
            }
        });
        matches!(dist[t.index()], Some(d) if d <= delay_bound)
    };
    let mut costs: Vec<i64> = graph.edges().iter().map(|e| e.cost).collect();
    costs.push(0);
    costs.sort_unstable();
    costs.dedup();
    if !min_delay_using(*costs.last().unwrap()) {
        return None; // no delay-feasible path at all
    }
    // Binary search the threshold list.
    let mut lo = 0usize;
    let mut hi = costs.len() - 1;
    while lo < hi {
        let mid = (lo + hi) / 2;
        if min_delay_using(costs[mid]) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let cstar = costs[lo];
    if cstar == 0 {
        // A zero-cost feasible path exists: it is optimal; extract it via
        // the exact min-delay path over zero-cost edges.
        let (dist, pred) = dijkstra(graph, s, |e| {
            if graph.edge(e).cost == 0 {
                graph.edge(e).delay
            } else {
                sentinel
            }
        });
        let edges = crate::dijkstra::path_to(graph, &dist, &pred, t)?;
        let p = CspPath::from_edges(graph, edges);
        debug_assert_eq!(p.cost, 0);
        return Some(p);
    }
    let mut lb = cstar; // OPT ≥ lb
    let mut ub = n * cstar; // a feasible path of cost ≤ ub exists

    // Scaled test: does a delay-feasible path of cost ≤ c(1+ε0) exist?
    // (pass ⇒ such a path is produced; fail ⇒ OPT > c). ε0 = 1 here.
    // Takes the scratch explicitly so every probe reuses one arena.
    let test = |scratch: &mut DpScratch, c: i64| -> Option<CspPath> {
        // θ = c / (n+1); scaled cost c'(e) = floor(c(e)/θ); budget n+1.
        // For any ≤n-edge path: c(P)/θ − n ≤ c'(P) ≤ c(P)/θ.
        let theta_num = c;
        let theta_den = n + 1;
        let scaled = |e: EdgeId| -> i64 { graph.edge(e).cost * theta_den / theta_num };
        let budget = (n + 1) as usize; // floor(c/θ) = n+1
        let complete = budget_dp(
            scratch,
            graph,
            s,
            budget,
            |e| scaled(e).min(budget as i64 + 1),
            |e| graph.edge(e).delay,
        );
        if !complete {
            return None;
        }
        let b = (0..=budget).find(|&b| {
            let v = scratch.value_at(b, t);
            v != UNREACHED && v <= delay_bound
        })?;
        let edges = recover(scratch, graph, s, t, b);
        Some(CspPath::from_edges(graph, edges))
    };

    // Geometric shrink until ub ≤ 4·lb. The test at the integer geometric
    // mean `c` either certifies OPT > c (fail ⇒ lb := c+1) or produces a
    // feasible path of cost ≤ 2c (pass ⇒ ub := 2c, using ε₀ = 1). While
    // ub > 4·lb, `2·⌊√(lb·ub)⌋ < ub`, so both branches strictly shrink the
    // bracket and the loop terminates in O(log log(ub/lb)) tests.
    while ub > 4 * lb {
        // A cancelled shrink probe returns None, which is indistinguishable
        // from "OPT > c" — check the token explicitly so cancellation never
        // misnarrows the bracket.
        if scratch.cancel.is_cancelled() {
            return None;
        }
        let c = geometric_midpoint(lb, ub);
        match test(scratch, c) {
            Some(p) => {
                debug_assert!(p.cost <= 2 * c, "test contract: cost ≤ (1+ε₀)·c");
                ub = ub.min((2 * c).max(lb));
            }
            None => {
                lb = c + 1;
            }
        }
        debug_assert!(lb <= ub);
    }

    // Final scaled DP with target ε: θ = lb·ε/(n+1).
    // scaled(e) = floor(c(e)/θ) = floor(c(e)·(n+1)·eps_den / (lb·eps_num)).
    let denom = lb as i128 * eps_num as i128;
    let scaled = |e: EdgeId| -> i64 {
        ((graph.edge(e).cost as i128 * (n as i128 + 1) * eps_den as i128) / denom) as i64
    };
    // Budget: c'(P*) ≤ OPT/θ ≤ ub·(n+1)·eps_den/(lb·eps_num) (+ slack n).
    let budget = ((ub as i128 * (n as i128 + 1) * eps_den as i128) / denom + n as i128 + 1)
        .min(i128::from(u32::MAX)) as usize;
    let complete = budget_dp(
        scratch,
        graph,
        s,
        budget,
        |e| scaled(e).min(budget as i64 + 1),
        |e| graph.edge(e).delay,
    );
    if !complete {
        return None;
    }
    let b = (0..=budget).find(|&b| {
        let v = scratch.value_at(b, t);
        v != UNREACHED && v <= delay_bound
    })?;
    let edges = recover(scratch, graph, s, t, b);
    let p = CspPath::from_edges(graph, edges);
    debug_assert!(p.delay <= delay_bound);
    Some(p)
}

/// Interval-scaling FPTAS for the restricted shortest path problem
/// (Holzmüller-style improvement over the classic scheme): same contract as
/// [`rsp_fptas`] — `delay ≤ delay_bound`, `cost ≤ (1+ε)·OPT`, or `None` if
/// infeasible — but the final scaled DP runs over a bracket narrowed well
/// below the classic scheme's fixed `ub ≤ 4·lb`, so at small ε most of the
/// budget levels the classic kernel sweeps are never computed.
///
/// Allocates a fresh [`DpScratch`]; use [`rsp_fptas_interval_with`] to
/// amortize across calls.
#[must_use]
pub fn rsp_fptas_interval(
    graph: &DiGraph,
    s: NodeId,
    t: NodeId,
    delay_bound: i64,
    eps_num: u32,
    eps_den: u32,
) -> Option<CspPath> {
    rsp_fptas_interval_with(
        graph,
        s,
        t,
        delay_bound,
        eps_num,
        eps_den,
        &mut DpScratch::new(),
    )
}

/// [`rsp_fptas_interval`] over a caller-owned scratch arena.
///
/// The scheme sharpens the classic pipeline in three places:
///
/// 1. every interval test that *passes* keeps the witness path it
///    recovered, so `ub` is always the cost of a real delay-feasible path
///    (an *incumbent*), not the looser analytic bound `2c`;
/// 2. after the ε₀ = 1 geometric shrink, a short ladder of higher-precision
///    interval tests (ε_t = 1/2, then 1/4, …) keeps halving the bracket
///    while each test costs only `(n+1)/ε_t` DP levels — negligible against
///    the `(ub/lb)·(n+1)/ε` levels it saves from the final DP. The ladder
///    stops as soon as a round would cost a constant fraction of the final
///    DP (`ε_t < 2ε`), or the bracket already certifies the incumbent
///    (`ub ≤ (1+ε)·lb` — then the incumbent is returned with no final DP
///    at all);
/// 3. the final scaled DP stops at the first delay-feasible level instead
///    of sweeping the whole budget range and scanning afterwards — sound
///    because level `b` depends only on levels `≤ b`.
///
/// Every interval test is a cancellation point (the scratch's
/// [`CancelToken`] is honoured exactly like [`rsp_fptas_with`]'s) and
/// carries the `csp.interval_test` failpoint for fault injection.
#[must_use]
pub fn rsp_fptas_interval_with(
    graph: &DiGraph,
    s: NodeId,
    t: NodeId,
    delay_bound: i64,
    eps_num: u32,
    eps_den: u32,
    scratch: &mut DpScratch,
) -> Option<CspPath> {
    assert!(eps_num > 0 && eps_den > 0, "epsilon must be positive");
    assert!(delay_bound >= 0);
    let n = graph.node_count() as i64;

    // Phase A — feasibility + bottleneck bracket, as in the classic scheme,
    // except the threshold Dijkstra's witness path is materialized: it is
    // the first incumbent, so `ub` starts at a real path cost (≤ n·c*).
    let sentinel = graph.total_delay().max(delay_bound).saturating_add(1);
    let min_delay_path_using = |threshold: i64| -> Option<Vec<EdgeId>> {
        let (dist, pred) = dijkstra(graph, s, |e| {
            if graph.edge(e).cost <= threshold {
                graph.edge(e).delay
            } else {
                sentinel
            }
        });
        match dist[t.index()] {
            Some(d) if d <= delay_bound => crate::dijkstra::path_to(graph, &dist, &pred, t),
            _ => None,
        }
    };
    let mut costs: Vec<i64> = graph.edges().iter().map(|e| e.cost).collect();
    costs.push(0);
    costs.sort_unstable();
    costs.dedup();
    min_delay_path_using(*costs.last().unwrap())?;
    let mut lo = 0usize;
    let mut hi = costs.len() - 1;
    while lo < hi {
        let mid = (lo + hi) / 2;
        if min_delay_path_using(costs[mid]).is_some() {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let cstar = costs[lo];
    let witness = min_delay_path_using(cstar).expect("threshold c* is feasible by construction");
    let mut incumbent = CspPath::from_edges(graph, witness);
    debug_assert!(incumbent.delay <= delay_bound);
    if cstar == 0 {
        // A zero-cost feasible path exists; the witness is exactly the
        // min-delay path over cost-0 edges (edges above the threshold carry
        // the sentinel weight), hence optimal.
        debug_assert_eq!(incumbent.cost, 0);
        return Some(incumbent);
    }
    let mut lb = cstar; // OPT ≥ lb, always (test failures only raise it)
    let mut ub = incumbent.cost.max(lb); // witnessed by the incumbent

    // Generalized interval test at precision ε_t = tn/td: does a
    // delay-feasible path of cost ≤ (1+ε_t)·c exist? θ = c·tn/(td·(n+1)),
    // scaled(e) = ⌊cost(e)/θ⌋, budget = ⌊c/θ⌋ = ⌊td·(n+1)/tn⌋. If OPT ≤ c
    // then scaled(P*) ≤ budget, so the sweep reaches a delay-feasible level
    // and the recovered path Q has cost ≤ θ·(budget + n) ≤ (1+ε_t)·c; a
    // completed test that finds nothing therefore certifies OPT > c. The
    // early-exit sweep stops at the first feasible level, so a test costs
    // at most `td·(n+1)/tn` levels.
    let test = |scratch: &mut DpScratch, c: i64, tn: i64, td: i64| -> SweepOutcome {
        fail_point!("csp.interval_test", |_msg| SweepOutcome::Cancelled);
        let denom = c as i128 * tn as i128;
        let scaled = |e: EdgeId| -> i128 {
            graph.edge(e).cost as i128 * td as i128 * (n as i128 + 1) / denom
        };
        let budget = (td as i128 * (n as i128 + 1) / tn as i128).min(i128::from(u32::MAX)) as usize;
        budget_dp_until(
            scratch,
            graph,
            s,
            budget,
            |e| scaled(e).min(budget as i128 + 1) as i64,
            |e| graph.edge(e).delay,
            t,
            delay_bound,
        )
    };
    // Applies one test outcome to the bracket; returns `false` on
    // cancellation (the bracket is then untouched — a cancelled probe must
    // never masquerade as an "OPT > c" certificate).
    let apply = |scratch: &mut DpScratch,
                 c: i64,
                 tn: i64,
                 td: i64,
                 lb: &mut i64,
                 ub: &mut i64,
                 incumbent: &mut CspPath|
     -> bool {
        match test(scratch, c, tn, td) {
            SweepOutcome::Found(b) => {
                let edges = recover(scratch, graph, s, t, b);
                let p = CspPath::from_edges(graph, edges);
                debug_assert!(p.delay <= delay_bound);
                debug_assert!(
                    p.cost as i128 * td as i128 <= c as i128 * (td + tn) as i128,
                    "test contract: cost ≤ (1+ε_t)·c"
                );
                *ub = (*ub).min(p.cost.max(*lb));
                if p.cost < incumbent.cost {
                    *incumbent = p;
                }
                true
            }
            SweepOutcome::Exhausted => {
                *lb = c + 1;
                true
            }
            SweepOutcome::Cancelled => false,
        }
    };

    // Phase B — ε₀ = 1 geometric shrink until ub ≤ 4·lb, exactly as the
    // classic scheme, but each pass tightens ub to the witness path's
    // actual cost (≤ 2c), which can only shrink the bracket faster.
    while ub > 4 * lb {
        if scratch.cancel.is_cancelled() {
            return None;
        }
        let c = geometric_midpoint(lb, ub);
        if !apply(scratch, c, 1, 1, &mut lb, &mut ub, &mut incumbent) {
            return None;
        }
        debug_assert!(lb <= ub);
    }

    // Already certified? cost(incumbent) = ub ≤ (1+ε)·lb ≤ (1+ε)·OPT.
    let certified =
        |lb: i64, ub: i64| ub as i128 * eps_den as i128 <= lb as i128 * (eps_den + eps_num) as i128;

    // Phase C — refinement ladder: two tests per precision tier ε_t = 1/2,
    // 1/4, 1/8 drive the bracket toward its (1+ε_t)² fixed point. A tier
    // only runs while it is clearly profitable (ε_t ≥ 2ε, so a test costs
    // at most half the final DP's per-unit-bracket rate) and the bracket
    // is not yet certified.
    'ladder: for td in [2i64, 4, 8] {
        for _ in 0..2 {
            if certified(lb, ub) {
                return Some(incumbent);
            }
            if i128::from(td) * i128::from(eps_num) * 2 > i128::from(eps_den) {
                break 'ladder; // ε_t = 1/td < 2ε: not worth another test
            }
            if scratch.cancel.is_cancelled() {
                return None;
            }
            let c = geometric_midpoint(lb, ub);
            if !apply(scratch, c, 1, td, &mut lb, &mut ub, &mut incumbent) {
                return None;
            }
            debug_assert!(lb <= ub);
        }
    }
    if certified(lb, ub) {
        return Some(incumbent);
    }

    // Phase D — final scaled DP at the target ε over the narrowed bracket,
    // stopping at the first delay-feasible level. θ = lb·ε/(n+1), as in the
    // classic scheme; the budget covers scaled(P*) ≤ ub/θ plus n+1 slack,
    // and the incumbent guarantees a feasible level exists within it.
    let denom = lb as i128 * eps_num as i128;
    let scaled = |e: EdgeId| -> i128 {
        graph.edge(e).cost as i128 * (n as i128 + 1) * eps_den as i128 / denom
    };
    let budget = ((ub as i128 * (n as i128 + 1) * eps_den as i128) / denom + n as i128 + 1)
        .min(i128::from(u32::MAX)) as usize;
    match budget_dp_until(
        scratch,
        graph,
        s,
        budget,
        |e| scaled(e).min(budget as i128 + 1) as i64,
        |e| graph.edge(e).delay,
        t,
        delay_bound,
    ) {
        SweepOutcome::Found(b) => {
            let edges = recover(scratch, graph, s, t, b);
            let p = CspPath::from_edges(graph, edges);
            debug_assert!(p.delay <= delay_bound);
            Some(p)
        }
        // The incumbent's scaled cost fits the budget, so exhaustion cannot
        // happen on a completed sweep; return the incumbent defensively.
        SweepOutcome::Exhausted => Some(incumbent),
        SweepOutcome::Cancelled => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Cheap path is slow; fast path is pricey.
    fn tradeoff_graph() -> DiGraph {
        DiGraph::from_edges(
            4,
            &[
                (0, 1, 1, 10), // cheap+slow leg
                (1, 3, 1, 10),
                (0, 2, 10, 1), // fast+pricey leg
                (2, 3, 10, 1),
            ],
        )
    }

    #[test]
    fn exact_obeys_budget() {
        let g = tradeoff_graph();
        // Loose budget: cheap path.
        let p = constrained_shortest_path(&g, NodeId(0), NodeId(3), 20).unwrap();
        assert_eq!((p.cost, p.delay), (2, 20));
        // Tight budget: forced onto the fast path.
        let p = constrained_shortest_path(&g, NodeId(0), NodeId(3), 5).unwrap();
        assert_eq!((p.cost, p.delay), (20, 2));
        // Impossible budget.
        assert!(constrained_shortest_path(&g, NodeId(0), NodeId(3), 1).is_none());
    }

    #[test]
    fn exact_mixed_budget_uses_best_combination() {
        let g = DiGraph::from_edges(
            4,
            &[
                (0, 1, 1, 10),
                (1, 3, 1, 10), // cheap-slow: cost 2 delay 20
                (0, 2, 10, 1),
                (2, 3, 10, 1), // fast: cost 20 delay 2
                (1, 2, 0, 0),  // bridge allows half-and-half
            ],
        );
        // Budget 11: 0→1 (1,10) then bridge (0,0) then 2→3 (10,1) = (11, 11).
        let p = constrained_shortest_path(&g, NodeId(0), NodeId(3), 11).unwrap();
        assert_eq!((p.cost, p.delay), (11, 11));
    }

    #[test]
    fn zero_delay_edges_within_level() {
        let g = DiGraph::from_edges(4, &[(0, 1, 3, 0), (1, 2, 4, 0), (0, 2, 9, 0), (2, 3, 1, 0)]);
        let p = constrained_shortest_path(&g, NodeId(0), NodeId(3), 0).unwrap();
        assert_eq!((p.cost, p.delay), (8, 0));
    }

    #[test]
    fn unreachable_none() {
        let g = DiGraph::from_edges(3, &[(0, 1, 1, 1)]);
        assert!(constrained_shortest_path(&g, NodeId(0), NodeId(2), 100).is_none());
    }

    #[test]
    fn scratch_reuse_across_shapes() {
        // One scratch, alternating graphs/bounds: buffers must re-dimension
        // correctly and answers must match fresh-scratch runs.
        let g1 = tradeoff_graph();
        let g2 = DiGraph::from_edges(6, &[(0, 1, 2, 3), (1, 5, 2, 3), (0, 5, 9, 1)]);
        let mut scratch = DpScratch::new();
        for _ in 0..3 {
            for d in [1i64, 5, 20] {
                for (g, t) in [(&g1, NodeId(3)), (&g2, NodeId(5))] {
                    let fresh = constrained_shortest_path(g, NodeId(0), t, d);
                    let reused = constrained_shortest_path_with(g, NodeId(0), t, d, &mut scratch);
                    assert_eq!(fresh, reused);
                    let fresh = rsp_fptas(g, NodeId(0), t, d, 1, 2);
                    let reused = rsp_fptas_with(g, NodeId(0), t, d, 1, 2, &mut scratch);
                    assert_eq!(fresh, reused);
                }
            }
        }
    }

    #[test]
    fn cancelled_scratch_returns_none_and_recovers() {
        let g = tradeoff_graph();
        let mut scratch = DpScratch::new();
        let token = CancelToken::cancellable();
        token.cancel();
        scratch.set_cancel(token);
        assert!(
            constrained_shortest_path_with(&g, NodeId(0), NodeId(3), 20, &mut scratch).is_none()
        );
        assert!(rsp_fptas_with(&g, NodeId(0), NodeId(3), 20, 1, 2, &mut scratch).is_none());
        // Swapping back to a never-token makes the same scratch answer again.
        scratch.set_cancel(CancelToken::never());
        let p = constrained_shortest_path_with(&g, NodeId(0), NodeId(3), 20, &mut scratch).unwrap();
        assert_eq!((p.cost, p.delay), (2, 20));
    }

    #[test]
    fn digested_matches_rebuild_across_bounds() {
        // One digest built at the largest bound must answer every smaller
        // bound bit-identically to a per-call bucket rebuild — the shared
        // invariant the batch plane rests on.
        let graphs = [
            tradeoff_graph(),
            DiGraph::from_edges(
                4,
                &[
                    (0, 1, 1, 10),
                    (1, 3, 1, 10),
                    (0, 2, 10, 1),
                    (2, 3, 10, 1),
                    (1, 2, 0, 0), // zero-delay bridge exercises the CSR
                ],
            ),
        ];
        for g in &graphs {
            let digest = TopoDigest::delay_cost(g, 25);
            let mut scratch = DpScratch::new();
            let mut scratch_d = DpScratch::new();
            for d in 0..=25i64 {
                let rebuilt =
                    constrained_shortest_path_with(g, NodeId(0), NodeId(3), d, &mut scratch);
                let digested = constrained_shortest_path_digested(
                    g,
                    &digest,
                    NodeId(0),
                    NodeId(3),
                    d,
                    &mut scratch_d,
                );
                assert_eq!(rebuilt, digested, "bound {d}");
            }
        }
    }

    #[test]
    fn evolved_digest_matches_fresh_build() {
        let g = DiGraph::from_edges(
            4,
            &[
                (0, 1, 1, 10),
                (1, 3, 1, 10),
                (0, 2, 10, 1),
                (2, 3, 10, 1),
                (1, 2, 0, 0), // zero-delay bridge
            ],
        );
        let base = TopoDigest::delay_cost(&g, 25);
        assert_eq!(base.epoch(), 0);
        // Weight-only updates that keep every edge in its bucket class:
        // in-place patch path.
        let g1 = g.with_updates(&[(EdgeId(0), 3, 12), (EdgeId(3), 8, 2)]);
        assert!(g1.shares_adjacency_with(&g));
        let d1 = base.evolve(&g1, &[EdgeId(0), EdgeId(3)]);
        assert_eq!(d1.epoch(), 1);
        assert_eq!(d1.delta(), &[0, 3]);
        // A class-changing update (zero-delay bridge gains delay): rebuild
        // fallback path.
        let g2 = g1.with_updates(&[(EdgeId(4), 1, 2)]);
        let d2 = d1.evolve(&g2, &[EdgeId(4)]);
        assert_eq!(d2.epoch(), 2);
        // Both evolved digests answer bit-identically to fresh builds.
        let mut sa = DpScratch::new();
        let mut sb = DpScratch::new();
        for (gr, dig) in [(&g1, &d1), (&g2, &d2)] {
            let fresh = TopoDigest::delay_cost(gr, 25);
            for d in 0..=25i64 {
                let a =
                    constrained_shortest_path_digested(gr, dig, NodeId(0), NodeId(3), d, &mut sa);
                let b = constrained_shortest_path_digested(
                    gr,
                    &fresh,
                    NodeId(0),
                    NodeId(3),
                    d,
                    &mut sb,
                );
                assert_eq!(a, b, "bound {d}");
            }
        }
    }

    #[test]
    fn digested_multi_query_matches_independent_calls() {
        let g = DiGraph::from_edges(
            5,
            &[
                (0, 1, 1, 10),
                (1, 3, 1, 10),
                (0, 2, 10, 1),
                (2, 3, 10, 1),
                (1, 2, 0, 0),
                (3, 4, 2, 3),
                (1, 4, 7, 2),
            ],
        );
        let digest = TopoDigest::delay_cost(&g, 30);
        // Mixed sources, targets, and bounds — including infeasible ones —
        // so the grouping path, the shared-sweep reads, and the None cases
        // are all exercised.
        let queries = [
            CspQuery {
                s: NodeId(0),
                t: NodeId(3),
                delay_bound: 20,
            },
            CspQuery {
                s: NodeId(1),
                t: NodeId(4),
                delay_bound: 4,
            },
            CspQuery {
                s: NodeId(0),
                t: NodeId(4),
                delay_bound: 30,
            },
            CspQuery {
                s: NodeId(0),
                t: NodeId(3),
                delay_bound: 1, // infeasible
            },
            CspQuery {
                s: NodeId(1),
                t: NodeId(3),
                delay_bound: 11,
            },
            CspQuery {
                s: NodeId(4),
                t: NodeId(0),
                delay_bound: 9, // unreachable
            },
        ];
        let mut scratch = DpScratch::new();
        let batch = constrained_shortest_paths_digested(&g, &digest, &queries, &mut scratch);
        assert_eq!(batch.len(), queries.len());
        for (q, got) in queries.iter().zip(&batch) {
            let solo = constrained_shortest_path(&g, q.s, q.t, q.delay_bound);
            assert_eq!(&solo, got, "query {q:?}");
        }
    }

    #[test]
    fn digested_multi_query_respects_cancellation() {
        let g = tradeoff_graph();
        let digest = TopoDigest::delay_cost(&g, 20);
        let mut scratch = DpScratch::new();
        let token = CancelToken::cancellable();
        token.cancel();
        scratch.set_cancel(token);
        let queries = [CspQuery {
            s: NodeId(0),
            t: NodeId(3),
            delay_bound: 20,
        }];
        let out = constrained_shortest_paths_digested(&g, &digest, &queries, &mut scratch);
        assert_eq!(out, vec![None]);
        // The same scratch answers again once the token is replaced.
        scratch.set_cancel(CancelToken::never());
        let out = constrained_shortest_paths_digested(&g, &digest, &queries, &mut scratch);
        assert_eq!(
            (
                out[0].as_ref().unwrap().cost,
                out[0].as_ref().unwrap().delay
            ),
            (2, 20)
        );
    }

    #[test]
    fn fptas_feasible_and_near_optimal() {
        let g = tradeoff_graph();
        let p = rsp_fptas(&g, NodeId(0), NodeId(3), 20, 1, 2).unwrap();
        assert!(p.delay <= 20);
        assert!(p.cost <= 3); // OPT = 2, (1+1/2)·2 = 3
        let p = rsp_fptas(&g, NodeId(0), NodeId(3), 5, 1, 2).unwrap();
        assert!(p.delay <= 5);
        assert!(p.cost <= 30); // OPT = 20
        assert!(rsp_fptas(&g, NodeId(0), NodeId(3), 1, 1, 2).is_none());
    }

    #[test]
    fn fptas_zero_cost_shortcut() {
        let g = DiGraph::from_edges(3, &[(0, 1, 0, 5), (1, 2, 0, 5), (0, 2, 7, 1)]);
        let p = rsp_fptas(&g, NodeId(0), NodeId(2), 10, 1, 10).unwrap();
        assert_eq!(p.cost, 0);
    }

    #[test]
    fn geometric_midpoint_is_exact_near_i64_max() {
        // lb·ub ≫ 2^53: the old f64 path rounded √(lb·ub) up past the true
        // floor (for lb = ub = i64::MAX it saturates to i64::MAX only by
        // accident of the `as` cast; one step down it misbisects).
        let m = i64::MAX;
        assert_eq!(geometric_midpoint(m, m), m);
        assert_eq!(geometric_midpoint(m - 1, m), m - 1);
        assert_eq!(geometric_midpoint(1, m), 3_037_000_499); // ⌊√(2^63−1)⌋
                                                             // Exactness: mid is the floor sqrt of the product whenever that
                                                             // floor lands inside [lb, ub].
        for (lb, ub) in [
            (m / 4, m),
            (m / 2, m - 1),
            ((1 << 31) + 7, (1 << 62) + 11),
            (3, m / 3),
        ] {
            let mid = geometric_midpoint(lb, ub);
            let prod = lb as u128 * ub as u128;
            let mid_u = mid as u128;
            assert!(mid_u * mid_u <= prod, "mid too big for ({lb}, {ub})");
            assert!(
                (mid_u + 1) * (mid_u + 1) > prod,
                "mid not the floor for ({lb}, {ub})"
            );
            assert!((lb..=ub).contains(&mid));
        }
        // The shrink-loop invariant: while ub > 4·lb, 2·mid < ub strictly.
        let (lb, ub) = (m / 8, m);
        assert!(2i128 * i128::from(geometric_midpoint(lb, ub)) < i128::from(ub));
    }

    fn arb_graph() -> impl Strategy<Value = (DiGraph, i64)> {
        (
            proptest::collection::vec((0u32..7, 0u32..7, 0i64..15, 0i64..15), 1..24),
            0i64..40,
        )
            .prop_map(|(edges, d)| {
                let list: Vec<_> = edges.into_iter().filter(|&(u, v, _, _)| u != v).collect();
                (DiGraph::from_edges(7, &list), d)
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_fptas_within_factor((g, d) in arb_graph()) {
            let exact = constrained_shortest_path(&g, NodeId(0), NodeId(6), d);
            let approx = rsp_fptas(&g, NodeId(0), NodeId(6), d, 1, 2);
            match (exact, approx) {
                (None, None) => {}
                (Some(e), Some(a)) => {
                    prop_assert!(a.delay <= d);
                    // cost ≤ (1 + 1/2) OPT, integer arithmetic:
                    prop_assert!(2 * a.cost <= 3 * e.cost,
                        "approx {} vs opt {}", a.cost, e.cost);
                }
                (e, a) => prop_assert!(false, "feasibility mismatch: exact={:?} approx={:?}", e.is_some(), a.is_some()),
            }
        }

        #[test]
        fn prop_interval_fptas_within_factor((g, d) in arb_graph()) {
            // The interval kernel promises the same (1+ε) guarantee as the
            // classic one — feasibility parity with the exact DP, delay
            // within budget, cost within factor — without bit-identity.
            let exact = constrained_shortest_path(&g, NodeId(0), NodeId(6), d);
            for (num, den) in [(1u32, 2u32), (1, 8), (1, 16)] {
                let approx = rsp_fptas_interval(&g, NodeId(0), NodeId(6), d, num, den);
                match (&exact, approx) {
                    (None, None) => {}
                    (Some(e), Some(a)) => {
                        prop_assert!(a.delay <= d);
                        prop_assert!(
                            a.cost as i128 * den as i128
                                <= e.cost as i128 * (den + num) as i128,
                            "eps {}/{}: approx {} vs opt {}", num, den, a.cost, e.cost);
                    }
                    (e, a) => prop_assert!(false,
                        "feasibility mismatch at eps {}/{}: exact={:?} approx={:?}",
                        num, den, e.is_some(), a.is_some()),
                }
            }
        }

        #[test]
        fn prop_digested_batch_matches_independent_calls(
            (g, d) in arb_graph(),
            picks in proptest::collection::vec((0u32..7, 0u32..7, 0i64..40), 1..12),
        ) {
            // A digest at the max bound + grouped sweeps must be
            // bit-identical to one fresh call per query.
            let digest = TopoDigest::delay_cost(&g, 40);
            let queries: Vec<CspQuery> = picks
                .into_iter()
                .map(|(s, t, jitter)| CspQuery {
                    s: NodeId(s),
                    t: NodeId(t),
                    delay_bound: jitter.min(d.max(0)),
                })
                .collect();
            let mut scratch = DpScratch::new();
            let batch = constrained_shortest_paths_digested(&g, &digest, &queries, &mut scratch);
            for (q, got) in queries.iter().zip(&batch) {
                let solo = constrained_shortest_path(&g, q.s, q.t, q.delay_bound);
                prop_assert_eq!(&solo, got, "query {:?}", q);
            }
        }

        #[test]
        fn prop_exact_is_minimal_vs_enumeration((g, d) in arb_graph()) {
            // Brute force: DFS all simple paths, track best cost within D.
            #[allow(clippy::too_many_arguments)]
            fn dfs(g: &DiGraph, cur: NodeId, t: NodeId, visited: &mut Vec<bool>,
                   cost: i64, delay: i64, d: i64, best: &mut Option<i64>) {
                if delay > d { return; }
                if cur == t {
                    *best = Some(best.map_or(cost, |b: i64| b.min(cost)));
                    return;
                }
                for &e in g.out_edges(cur) {
                    let r = g.edge(e);
                    if !visited[r.dst.index()] {
                        visited[r.dst.index()] = true;
                        dfs(g, r.dst, t, visited, cost + r.cost, delay + r.delay, d, best);
                        visited[r.dst.index()] = false;
                    }
                }
            }
            let mut best = None;
            let mut visited = vec![false; g.node_count()];
            visited[0] = true;
            dfs(&g, NodeId(0), NodeId(6), &mut visited, 0, 0, d, &mut best);
            let ours = constrained_shortest_path(&g, NodeId(0), NodeId(6), d).map(|p| p.cost);
            prop_assert_eq!(ours, best);
        }
    }
}
