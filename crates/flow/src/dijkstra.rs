//! Dijkstra shortest paths for nonnegative weights.

use crate::weight::Weight;
use krsp_graph::{DiGraph, EdgeId, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Single-source shortest paths; all edge weights must be `≥ W::ZERO`
/// (checked in debug builds).
///
/// Returns `(dist, pred)` in the same layout as
/// [`crate::bellman_ford::BfResult`].
pub fn dijkstra<W: Weight>(
    graph: &DiGraph,
    source: NodeId,
    weight: impl Fn(EdgeId) -> W,
) -> (Vec<Option<W>>, Vec<Option<EdgeId>>) {
    let n = graph.node_count();
    let mut dist: Vec<Option<W>> = vec![None; n];
    let mut pred: Vec<Option<EdgeId>> = vec![None; n];
    let mut done = vec![false; n];
    let mut heap: BinaryHeap<Reverse<(W, u32)>> = BinaryHeap::new();
    dist[source.index()] = Some(W::ZERO);
    heap.push(Reverse((W::ZERO, source.0)));

    while let Some(Reverse((du, u))) = heap.pop() {
        let u = NodeId(u);
        if done[u.index()] {
            continue;
        }
        done[u.index()] = true;
        for &e in graph.out_edges(u) {
            let w = weight(e);
            debug_assert!(!w.is_negative(), "dijkstra requires nonnegative weights");
            let v = graph.edge(e).dst;
            let cand = du.add_checked(w);
            let better = match dist[v.index()] {
                None => true,
                Some(dv) => cand < dv,
            };
            if better {
                dist[v.index()] = Some(cand);
                pred[v.index()] = Some(e);
                heap.push(Reverse((cand, v.0)));
            }
        }
    }
    (dist, pred)
}

/// Reconstructs the edge sequence of the shortest path to `v` from a
/// `(dist, pred)` pair produced by [`dijkstra`].
#[must_use]
pub fn path_to(
    graph: &DiGraph,
    dist: &[Option<impl Copy>],
    pred: &[Option<EdgeId>],
    v: NodeId,
) -> Option<Vec<EdgeId>> {
    dist[v.index()]?;
    let mut edges = Vec::new();
    let mut cur = v;
    while let Some(e) = pred[cur.index()] {
        edges.push(e);
        cur = graph.edge(e).src;
    }
    edges.reverse();
    Some(edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bellman_ford::bellman_ford;
    use proptest::prelude::*;

    #[test]
    fn matches_hand_computed() {
        let g = DiGraph::from_edges(
            5,
            &[
                (0, 1, 7, 0),
                (0, 2, 3, 0),
                (2, 1, 2, 0),
                (1, 3, 1, 0),
                (2, 3, 8, 0),
                (3, 4, 2, 0),
            ],
        );
        let (dist, pred) = dijkstra(&g, NodeId(0), |e| g.edge(e).cost);
        assert_eq!(dist[1], Some(5));
        assert_eq!(dist[3], Some(6));
        assert_eq!(dist[4], Some(8));
        assert_eq!(
            path_to(&g, &dist, &pred, NodeId(4)).unwrap(),
            vec![EdgeId(1), EdgeId(2), EdgeId(3), EdgeId(5)]
        );
    }

    #[test]
    fn unreachable() {
        let g = DiGraph::from_edges(3, &[(1, 2, 1, 0)]);
        let (dist, pred) = dijkstra(&g, NodeId(0), |e| g.edge(e).cost);
        assert_eq!(dist[1], None);
        assert!(path_to(&g, &dist, &pred, NodeId(1)).is_none());
    }

    proptest! {
        /// Dijkstra agrees with Bellman–Ford on random nonnegative graphs.
        #[test]
        fn prop_matches_bellman_ford(
            edges in proptest::collection::vec((0u32..12, 0u32..12, 0i64..50), 1..60),
        ) {
            let g = DiGraph::from_edges(12, &edges.iter().map(|&(u, v, c)| (u, v, c, 0)).collect::<Vec<_>>());
            let (dist, _) = dijkstra(&g, NodeId(0), |e| g.edge(e).cost);
            let bf = bellman_ford(&g, NodeId(0), |e| g.edge(e).cost);
            prop_assert!(bf.negative_cycle.is_none());
            prop_assert_eq!(dist, bf.dist);
        }
    }
}
