//! Bellman–Ford shortest paths with negative-cycle extraction.
//!
//! Residual graphs (Definition 6) carry negative costs *and* negative
//! delays, so every shortest-path computation downstream of cycle
//! cancellation must tolerate negative weights. This module also extracts an
//! explicit negative cycle when one exists — the primitive behind both the
//! Orda–Sprintson baseline and the layered bicameral-cycle engine.

use crate::weight::Weight;
use krsp_graph::{DiGraph, EdgeId, NodeId};

/// Output of a Bellman–Ford run.
#[derive(Clone, Debug)]
pub struct BfResult<W> {
    /// `dist[v]` = weight of the lightest walk from the source set to `v`
    /// (`None` if unreachable). Meaningless for nodes on/behind a negative
    /// cycle when one is reported.
    pub dist: Vec<Option<W>>,
    /// Predecessor edge on the lightest walk.
    pub pred: Vec<Option<EdgeId>>,
    /// A reachable negative-total-weight cycle, if any (contiguous edge
    /// list, closed).
    pub negative_cycle: Option<Vec<EdgeId>>,
}

impl<W: Weight> BfResult<W> {
    /// Reconstructs the edge sequence of the lightest path to `v`, if
    /// reachable and no negative cycle was reported.
    #[must_use]
    pub fn path_to(&self, graph: &DiGraph, v: NodeId) -> Option<Vec<EdgeId>> {
        self.dist[v.index()]?;
        let mut edges = Vec::new();
        let mut cur = v;
        while let Some(e) = self.pred[cur.index()] {
            edges.push(e);
            cur = graph.edge(e).src;
            if edges.len() > graph.edge_count() {
                return None; // cycle in predecessor graph
            }
        }
        edges.reverse();
        Some(edges)
    }
}

/// Bellman–Ford from a single source.
pub fn bellman_ford<W: Weight>(
    graph: &DiGraph,
    source: NodeId,
    weight: impl Fn(EdgeId) -> W,
) -> BfResult<W> {
    run(graph, &[source], weight)
}

/// Bellman–Ford with *every* node as a zero-distance source — detects a
/// negative cycle anywhere in the graph.
pub fn find_negative_cycle<W: Weight>(
    graph: &DiGraph,
    weight: impl Fn(EdgeId) -> W,
) -> Option<Vec<EdgeId>> {
    let sources: Vec<NodeId> = graph.node_iter().collect();
    run(graph, &sources, weight).negative_cycle
}

fn run<W: Weight>(
    graph: &DiGraph,
    sources: &[NodeId],
    weight: impl Fn(EdgeId) -> W,
) -> BfResult<W> {
    let n = graph.node_count();
    let mut dist: Vec<Option<W>> = vec![None; n];
    let mut pred: Vec<Option<EdgeId>> = vec![None; n];
    for &s in sources {
        dist[s.index()] = Some(W::ZERO);
    }

    let mut last_relaxed: Option<NodeId> = None;
    for round in 0..n {
        last_relaxed = None;
        for (id, e) in graph.edge_iter() {
            let Some(du) = dist[e.src.index()] else {
                continue;
            };
            let cand = du.add_checked(weight(id));
            let better = match dist[e.dst.index()] {
                None => true,
                Some(dv) => cand < dv,
            };
            if better {
                dist[e.dst.index()] = Some(cand);
                pred[e.dst.index()] = Some(id);
                last_relaxed = Some(e.dst);
            }
        }
        if last_relaxed.is_none() {
            break;
        }
        let _ = round;
    }

    let negative_cycle = last_relaxed.map(|start| {
        // Walk the predecessor graph backwards from the just-relaxed node
        // until a node repeats; the edges between the two occurrences form a
        // cycle, and every cycle in the predecessor graph at this point has
        // negative weight (standard Bellman–Ford argument).
        let mut order = vec![usize::MAX; n];
        let mut back_edges: Vec<EdgeId> = Vec::new();
        let mut cur = start;
        order[cur.index()] = 0;
        loop {
            let e =
                pred[cur.index()].expect("pred chain from a round-n relaxation cannot terminate");
            back_edges.push(e);
            cur = graph.edge(e).src;
            if order[cur.index()] != usize::MAX {
                // Entered the cycle: edges from position `order[cur]` up to
                // here (in backward orientation) close it.
                let from = order[cur.index()];
                let mut cyc: Vec<EdgeId> = back_edges[from..].to_vec();
                cyc.reverse();
                break cyc;
            }
            order[cur.index()] = back_edges.len();
            assert!(
                back_edges.len() <= n,
                "predecessor walk exceeded node count without cycling"
            );
        }
    });

    BfResult {
        dist,
        pred,
        negative_cycle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(graph: &DiGraph) -> impl Fn(EdgeId) -> i64 + '_ {
        move |e| graph.edge(e).cost
    }

    #[test]
    fn shortest_paths_positive() {
        let g = DiGraph::from_edges(4, &[(0, 1, 1, 0), (1, 2, 2, 0), (0, 2, 5, 0), (2, 3, 1, 0)]);
        let r = bellman_ford(&g, NodeId(0), w(&g));
        assert!(r.negative_cycle.is_none());
        assert_eq!(r.dist[3], Some(4));
        assert_eq!(
            r.path_to(&g, NodeId(3)).unwrap(),
            vec![EdgeId(0), EdgeId(1), EdgeId(3)]
        );
    }

    #[test]
    fn negative_edges_no_cycle() {
        let g = DiGraph::from_edges(3, &[(0, 1, 4, 0), (1, 2, -2, 0), (0, 2, 3, 0)]);
        let r = bellman_ford(&g, NodeId(0), w(&g));
        assert!(r.negative_cycle.is_none());
        assert_eq!(r.dist[2], Some(2));
    }

    #[test]
    fn unreachable_is_none() {
        let g = DiGraph::from_edges(3, &[(1, 2, 1, 0)]);
        let r = bellman_ford(&g, NodeId(0), w(&g));
        assert_eq!(r.dist[0], Some(0));
        assert_eq!(r.dist[1], None);
        assert_eq!(r.dist[2], None);
        assert!(r.path_to(&g, NodeId(2)).is_none());
        assert_eq!(r.path_to(&g, NodeId(0)).unwrap(), Vec::<EdgeId>::new());
    }

    #[test]
    fn negative_cycle_extracted() {
        // 0→1→2→1 with the 1-2-1 loop summing to -1.
        let g = DiGraph::from_edges(3, &[(0, 1, 1, 0), (1, 2, 2, 0), (2, 1, -3, 0)]);
        let r = bellman_ford(&g, NodeId(0), w(&g));
        let cyc = r.negative_cycle.expect("negative cycle");
        let total: i64 = cyc.iter().map(|&e| g.edge(e).cost).sum();
        assert!(total < 0, "extracted cycle weight {total}");
        // Cycle must be closed & contiguous.
        let first = g.edge(cyc[0]).src;
        let mut cur = first;
        for &e in &cyc {
            assert_eq!(g.edge(e).src, cur);
            cur = g.edge(e).dst;
        }
        assert_eq!(cur, first);
    }

    #[test]
    fn negative_cycle_unreachable_from_source_found_globally() {
        // Cycle 2→3→2 negative, not reachable from node 0.
        let g = DiGraph::from_edges(4, &[(0, 1, 1, 0), (2, 3, 1, 0), (3, 2, -2, 0)]);
        let r = bellman_ford(&g, NodeId(0), w(&g));
        assert!(r.negative_cycle.is_none());
        let cyc = find_negative_cycle(&g, w(&g)).expect("global detection");
        let total: i64 = cyc.iter().map(|&e| g.edge(e).cost).sum();
        assert!(total < 0);
    }

    #[test]
    fn zero_cycle_not_reported() {
        let g = DiGraph::from_edges(2, &[(0, 1, 2, 0), (1, 0, -2, 0)]);
        assert!(find_negative_cycle(&g, w(&g)).is_none());
    }

    #[test]
    fn lexicographic_weights() {
        use krsp_numeric::Lex2;
        // Two parallel 0→1 edges with equal primary, different secondary.
        let g = DiGraph::from_edges(2, &[(0, 1, 5, 9), (0, 1, 5, 3)]);
        let r = bellman_ford(&g, NodeId(0), |e| {
            let rec = g.edge(e);
            Lex2::new(rec.cost as i128, rec.delay as i128)
        });
        assert_eq!(r.dist[1], Some(Lex2::new(5, 3)));
        assert_eq!(r.pred[1], Some(EdgeId(1)));
    }

    #[test]
    fn parallel_and_self_loops() {
        let mut g = DiGraph::new(2);
        g.add_edge(NodeId(0), NodeId(0), -1, 0); // negative self-loop
        g.add_edge(NodeId(0), NodeId(1), 1, 0);
        let cyc = find_negative_cycle(&g, w(&g)).expect("self-loop cycle");
        assert_eq!(cyc, vec![EdgeId(0)]);
    }
}
