//! Bellman–Ford shortest paths with negative-cycle extraction.
//!
//! Residual graphs (Definition 6) carry negative costs *and* negative
//! delays, so every shortest-path computation downstream of cycle
//! cancellation must tolerate negative weights. This module also extracts an
//! explicit negative cycle when one exists — the primitive behind both the
//! Orda–Sprintson baseline and the layered bicameral-cycle engine.
//!
//! Algorithm 1's inner loop calls negative-cycle detection once per
//! cancellation iteration per layered pass; [`BfScratch`] lets those calls
//! share the `dist`/`pred`/`order`/cycle buffers instead of reallocating
//! them every time (DESIGN.md §4.12).

use crate::weight::Weight;
use krsp_graph::{DiGraph, EdgeId, NodeId};

/// Output of a Bellman–Ford run.
#[derive(Clone, Debug)]
pub struct BfResult<W> {
    /// `dist[v]` = weight of the lightest walk from the source set to `v`
    /// (`None` if unreachable). Meaningless for nodes on/behind a negative
    /// cycle when one is reported.
    pub dist: Vec<Option<W>>,
    /// Predecessor edge on the lightest walk.
    pub pred: Vec<Option<EdgeId>>,
    /// A reachable negative-total-weight cycle, if any (contiguous edge
    /// list, closed).
    pub negative_cycle: Option<Vec<EdgeId>>,
}

impl<W: Weight> BfResult<W> {
    /// Reconstructs the edge sequence of the lightest path to `v`, if
    /// reachable and no negative cycle was reported.
    #[must_use]
    pub fn path_to(&self, graph: &DiGraph, v: NodeId) -> Option<Vec<EdgeId>> {
        self.dist[v.index()]?;
        let mut edges = Vec::new();
        let mut cur = v;
        while let Some(e) = self.pred[cur.index()] {
            edges.push(e);
            cur = graph.edge(e).src;
            if edges.len() > graph.edge_count() {
                return None; // cycle in predecessor graph
            }
        }
        edges.reverse();
        Some(edges)
    }
}

/// Caller-owned buffers for repeated Bellman–Ford runs.
///
/// One scratch adapts to any graph size (buffers are resized per run,
/// capacity is retained), so a single instance can serve a whole
/// cancellation loop across residual and auxiliary graphs of different
/// shapes.
#[derive(Clone, Debug)]
pub struct BfScratch<W> {
    dist: Vec<Option<W>>,
    pred: Vec<Option<EdgeId>>,
    /// Backward-walk position per node during cycle extraction
    /// (`usize::MAX` = unvisited).
    order: Vec<usize>,
    /// Extracted cycle (closed, contiguous); valid after a run that
    /// returned `true`.
    cycle: Vec<EdgeId>,
}

impl<W> Default for BfScratch<W> {
    fn default() -> Self {
        BfScratch {
            dist: Vec::new(),
            pred: Vec::new(),
            order: Vec::new(),
            cycle: Vec::new(),
        }
    }
}

impl<W> BfScratch<W> {
    /// An empty scratch; buffers are sized lazily on first use.
    #[must_use]
    pub fn new() -> Self {
        BfScratch::default()
    }
}

/// Bellman–Ford from a single source.
pub fn bellman_ford<W: Weight>(
    graph: &DiGraph,
    source: NodeId,
    weight: impl Fn(EdgeId) -> W,
) -> BfResult<W> {
    let mut scratch = BfScratch::new();
    let found = run(graph, std::iter::once(source), weight, &mut scratch);
    BfResult {
        dist: scratch.dist,
        pred: scratch.pred,
        negative_cycle: found.then_some(scratch.cycle),
    }
}

/// Bellman–Ford with *every* node as a zero-distance source — detects a
/// negative cycle anywhere in the graph.
pub fn find_negative_cycle<W: Weight>(
    graph: &DiGraph,
    weight: impl Fn(EdgeId) -> W,
) -> Option<Vec<EdgeId>> {
    let mut scratch = BfScratch::new();
    find_negative_cycle_in(graph, weight, &mut scratch).map(<[EdgeId]>::to_vec)
}

/// [`find_negative_cycle`] over caller-owned buffers: no per-call
/// allocation once the scratch is warm. The returned slice borrows the
/// scratch and stays valid until the next run.
pub fn find_negative_cycle_in<'s, W: Weight>(
    graph: &DiGraph,
    weight: impl Fn(EdgeId) -> W,
    scratch: &'s mut BfScratch<W>,
) -> Option<&'s [EdgeId]> {
    run(graph, graph.node_iter(), weight, scratch).then_some(scratch.cycle.as_slice())
}

/// The relaxation engine. Leaves `dist`/`pred` in the scratch; returns
/// `true` iff a reachable negative cycle exists, in which case the closed
/// contiguous edge list is left in `scratch.cycle`.
fn run<W: Weight>(
    graph: &DiGraph,
    sources: impl Iterator<Item = NodeId>,
    weight: impl Fn(EdgeId) -> W,
    scratch: &mut BfScratch<W>,
) -> bool {
    let n = graph.node_count();
    scratch.dist.clear();
    scratch.dist.resize(n, None);
    scratch.pred.clear();
    scratch.pred.resize(n, None);
    let dist = &mut scratch.dist;
    let pred = &mut scratch.pred;
    for s in sources {
        dist[s.index()] = Some(W::ZERO);
    }

    let mut last_relaxed: Option<NodeId> = None;
    for round in 0..n {
        last_relaxed = None;
        for (id, e) in graph.edge_iter() {
            let Some(du) = dist[e.src.index()] else {
                continue;
            };
            let cand = du.add_checked(weight(id));
            let better = match dist[e.dst.index()] {
                None => true,
                Some(dv) => cand < dv,
            };
            if better {
                dist[e.dst.index()] = Some(cand);
                pred[e.dst.index()] = Some(id);
                last_relaxed = Some(e.dst);
            }
        }
        if last_relaxed.is_none() {
            break;
        }
        let _ = round;
    }

    let Some(start) = last_relaxed else {
        return false;
    };
    // Walk the predecessor graph backwards from the just-relaxed node until
    // a node repeats; the edges between the two occurrences form a cycle,
    // and every cycle in the predecessor graph at this point has negative
    // weight (standard Bellman–Ford argument).
    scratch.order.clear();
    scratch.order.resize(n, usize::MAX);
    let order = &mut scratch.order;
    let back_edges = &mut scratch.cycle;
    back_edges.clear();
    let mut cur = start;
    order[cur.index()] = 0;
    loop {
        let e = pred[cur.index()].expect("pred chain from a round-n relaxation cannot terminate");
        back_edges.push(e);
        cur = graph.edge(e).src;
        if order[cur.index()] != usize::MAX {
            // Entered the cycle: edges from position `order[cur]` up to
            // here (in backward orientation) close it. Drop the approach
            // prefix in place and flip to forward orientation — no copy.
            let from = order[cur.index()];
            back_edges.drain(..from);
            back_edges.reverse();
            return true;
        }
        order[cur.index()] = back_edges.len();
        assert!(
            back_edges.len() <= n,
            "predecessor walk exceeded node count without cycling"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(graph: &DiGraph) -> impl Fn(EdgeId) -> i64 + '_ {
        move |e| graph.edge(e).cost
    }

    #[test]
    fn shortest_paths_positive() {
        let g = DiGraph::from_edges(4, &[(0, 1, 1, 0), (1, 2, 2, 0), (0, 2, 5, 0), (2, 3, 1, 0)]);
        let r = bellman_ford(&g, NodeId(0), w(&g));
        assert!(r.negative_cycle.is_none());
        assert_eq!(r.dist[3], Some(4));
        assert_eq!(
            r.path_to(&g, NodeId(3)).unwrap(),
            vec![EdgeId(0), EdgeId(1), EdgeId(3)]
        );
    }

    #[test]
    fn negative_edges_no_cycle() {
        let g = DiGraph::from_edges(3, &[(0, 1, 4, 0), (1, 2, -2, 0), (0, 2, 3, 0)]);
        let r = bellman_ford(&g, NodeId(0), w(&g));
        assert!(r.negative_cycle.is_none());
        assert_eq!(r.dist[2], Some(2));
    }

    #[test]
    fn unreachable_is_none() {
        let g = DiGraph::from_edges(3, &[(1, 2, 1, 0)]);
        let r = bellman_ford(&g, NodeId(0), w(&g));
        assert_eq!(r.dist[0], Some(0));
        assert_eq!(r.dist[1], None);
        assert_eq!(r.dist[2], None);
        assert!(r.path_to(&g, NodeId(2)).is_none());
        assert_eq!(r.path_to(&g, NodeId(0)).unwrap(), Vec::<EdgeId>::new());
    }

    #[test]
    fn negative_cycle_extracted() {
        // 0→1→2→1 with the 1-2-1 loop summing to -1.
        let g = DiGraph::from_edges(3, &[(0, 1, 1, 0), (1, 2, 2, 0), (2, 1, -3, 0)]);
        let r = bellman_ford(&g, NodeId(0), w(&g));
        let cyc = r.negative_cycle.expect("negative cycle");
        let total: i64 = cyc.iter().map(|&e| g.edge(e).cost).sum();
        assert!(total < 0, "extracted cycle weight {total}");
        // Cycle must be closed & contiguous.
        let first = g.edge(cyc[0]).src;
        let mut cur = first;
        for &e in &cyc {
            assert_eq!(g.edge(e).src, cur);
            cur = g.edge(e).dst;
        }
        assert_eq!(cur, first);
    }

    #[test]
    fn negative_cycle_unreachable_from_source_found_globally() {
        // Cycle 2→3→2 negative, not reachable from node 0.
        let g = DiGraph::from_edges(4, &[(0, 1, 1, 0), (2, 3, 1, 0), (3, 2, -2, 0)]);
        let r = bellman_ford(&g, NodeId(0), w(&g));
        assert!(r.negative_cycle.is_none());
        let cyc = find_negative_cycle(&g, w(&g)).expect("global detection");
        let total: i64 = cyc.iter().map(|&e| g.edge(e).cost).sum();
        assert!(total < 0);
    }

    #[test]
    fn zero_cycle_not_reported() {
        let g = DiGraph::from_edges(2, &[(0, 1, 2, 0), (1, 0, -2, 0)]);
        assert!(find_negative_cycle(&g, w(&g)).is_none());
    }

    #[test]
    fn lexicographic_weights() {
        use krsp_numeric::Lex2;
        // Two parallel 0→1 edges with equal primary, different secondary.
        let g = DiGraph::from_edges(2, &[(0, 1, 5, 9), (0, 1, 5, 3)]);
        let r = bellman_ford(&g, NodeId(0), |e| {
            let rec = g.edge(e);
            Lex2::new(rec.cost as i128, rec.delay as i128)
        });
        assert_eq!(r.dist[1], Some(Lex2::new(5, 3)));
        assert_eq!(r.pred[1], Some(EdgeId(1)));
    }

    #[test]
    fn parallel_and_self_loops() {
        let mut g = DiGraph::new(2);
        g.add_edge(NodeId(0), NodeId(0), -1, 0); // negative self-loop
        g.add_edge(NodeId(0), NodeId(1), 1, 0);
        let cyc = find_negative_cycle(&g, w(&g)).expect("self-loop cycle");
        assert_eq!(cyc, vec![EdgeId(0)]);
    }

    #[test]
    fn scratch_reuse_across_graphs() {
        // One scratch across graphs of different sizes, with and without
        // negative cycles: results must match the allocating API.
        let cyclic = DiGraph::from_edges(3, &[(0, 1, 1, 0), (1, 2, 2, 0), (2, 1, -3, 0)]);
        let acyclic = DiGraph::from_edges(5, &[(0, 1, 1, 0), (1, 4, -2, 0), (0, 4, 3, 0)]);
        let mut scratch = BfScratch::new();
        for _ in 0..3 {
            let got =
                find_negative_cycle_in(&cyclic, w(&cyclic), &mut scratch).map(<[EdgeId]>::to_vec);
            assert_eq!(got, find_negative_cycle(&cyclic, w(&cyclic)));
            assert!(find_negative_cycle_in(&acyclic, w(&acyclic), &mut scratch).is_none());
        }
    }
}
