//! Pluggable restricted-shortest-path kernels (DESIGN.md §4.16).
//!
//! The `(1+ε)` RSP subproblem — the `k = 1` core every baseline and service
//! rung leans on — now sits behind the [`RspKernel`] trait, with two
//! interchangeable backends:
//!
//! * [`ClassicFptas`] — the flat Lorenz–Raz style scheme
//!   ([`crate::csp::rsp_fptas_with`]), bit-identical to the preserved
//!   [`crate::reference`] oracle;
//! * [`IntervalScalingFptas`] — the Holzmüller-style interval-scaling
//!   scheme ([`crate::csp::rsp_fptas_interval_with`]): incumbent-tightened
//!   geometric bracketing plus a refinement ladder of cheap interval tests,
//!   so the final scaled DP sweeps an `(1+o(1))`-narrow budget window
//!   instead of the classic fixed `4·lb` range, and stops at the first
//!   delay-feasible level.
//!
//! Both give the same `(1+ε)` guarantee but generally different paths, so
//! differential testing across kernels asserts *guarantees* (delay ≤ D,
//! cost ≤ (1+ε)·OPT), not bit-identity — see `tests/kernel_diff.rs`.
//!
//! The trait entry points are the *checked* surface: ε ≤ 0 is rejected with
//! a structured [`KernelError`] and ε > 1 is clamped to 1 (clamping down
//! only strengthens the `(1+ε)` promise), instead of the raw functions'
//! asserts. Exact digested (batched) solving is kernel-independent — the
//! provided [`RspKernel::solve_exact_digested`] delegates to the shared
//! [`TopoDigest`] plane for every backend.

use crate::csp::{
    constrained_shortest_paths_digested, rsp_fptas_interval_with, rsp_fptas_with, CspPath,
    CspQuery, DpScratch, TopoDigest,
};
use krsp_graph::{DiGraph, NodeId};
use serde::{Content, DeError, Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Selects an [`RspKernel`] backend; the wire/CLI names are `classic` and
/// `interval`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// The flat Lorenz–Raz style FPTAS (the pre-trait default).
    #[default]
    Classic,
    /// The Holzmüller-style interval-scaling FPTAS.
    Interval,
}

/// All kernel kinds, in wire order.
pub const KERNEL_KINDS: [KernelKind; 2] = [KernelKind::Classic, KernelKind::Interval];

impl KernelKind {
    /// The snake_case wire/CLI name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            KernelKind::Classic => "classic",
            KernelKind::Interval => "interval",
        }
    }
}

impl fmt::Display for KernelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for KernelKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "classic" => Ok(KernelKind::Classic),
            "interval" => Ok(KernelKind::Interval),
            other => Err(format!(
                "unknown kernel `{other}` (expected `classic` or `interval`)"
            )),
        }
    }
}

impl Serialize for KernelKind {
    fn to_content(&self) -> Content {
        Content::Str(self.as_str().to_owned())
    }
}

impl Deserialize for KernelKind {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => s.parse().map_err(DeError),
            other => Err(DeError::expected("kernel kind string", other)),
        }
    }
}

/// Structured failures of the checked kernel entry points.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelError {
    /// ε = eps_num/eps_den is nonpositive (a zero numerator or denominator);
    /// the scaling arithmetic is undefined there, so the request is rejected
    /// instead of panicking mid-division.
    InvalidEpsilon {
        /// Rejected numerator.
        num: u32,
        /// Rejected denominator.
        den: u32,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::InvalidEpsilon { num, den } => {
                write!(f, "invalid epsilon {num}/{den}: must be positive")
            }
        }
    }
}

impl std::error::Error for KernelError {}

/// Validates and normalizes ε = `num/den` for the checked kernel surface:
/// ε ≤ 0 (zero numerator or denominator) is a structured error; ε > 1 is
/// clamped to exactly 1 — the kernels' guarantees only strengthen under a
/// smaller ε, and ε > 1 buys nothing the ε = 1 interval test does not
/// already provide. Valid ε ∈ (0, 1] pass through untouched, so the checked
/// surface is bit-identical to the raw functions on every sensible request.
pub fn validate_eps(num: u32, den: u32) -> Result<(u32, u32), KernelError> {
    if num == 0 || den == 0 {
        return Err(KernelError::InvalidEpsilon { num, den });
    }
    if num > den {
        return Ok((1, 1));
    }
    Ok((num, den))
}

/// A backend for the restricted-shortest-path subproblem: minimum-cost
/// `s→t` path with `delay ≤ delay_bound`, to within a `(1+ε)` cost factor.
///
/// Implementations must be stateless (all mutable state rides in the
/// caller's [`DpScratch`], including the [`CancelToken`]
/// (crate::cancel::CancelToken) polled mid-solve), so a single `&'static`
/// instance serves every thread.
pub trait RspKernel: Send + Sync {
    /// Which backend this is.
    fn kind(&self) -> KernelKind;

    /// One-shot solve with a fresh scratch arena.
    fn solve(
        &self,
        graph: &DiGraph,
        s: NodeId,
        t: NodeId,
        delay_bound: i64,
        eps_num: u32,
        eps_den: u32,
    ) -> Result<Option<CspPath>, KernelError> {
        self.solve_with(
            graph,
            s,
            t,
            delay_bound,
            eps_num,
            eps_den,
            &mut DpScratch::new(),
        )
    }

    /// Solve over a caller-owned scratch arena (the amortized entry point;
    /// repeated solves reuse one allocation, and the scratch's cancel token
    /// is polled throughout).
    #[allow(clippy::too_many_arguments)]
    fn solve_with(
        &self,
        graph: &DiGraph,
        s: NodeId,
        t: NodeId,
        delay_bound: i64,
        eps_num: u32,
        eps_den: u32,
        scratch: &mut DpScratch,
    ) -> Result<Option<CspPath>, KernelError>;

    /// Exact batched solves against a shared [`TopoDigest`]. The exact DP
    /// is kernel-independent — ε plays no role — so the default answers
    /// through the shared digest plane for every backend, and the batch
    /// plane keeps its bit-identity invariant regardless of the configured
    /// kernel.
    fn solve_exact_digested(
        &self,
        graph: &DiGraph,
        digest: &TopoDigest,
        queries: &[CspQuery],
        scratch: &mut DpScratch,
    ) -> Vec<Option<CspPath>> {
        constrained_shortest_paths_digested(graph, digest, queries, scratch)
    }
}

/// The flat Lorenz–Raz style FPTAS, unchanged behind the trait:
/// bit-identical to [`crate::csp::rsp_fptas_with`] (and hence to the
/// preserved [`crate::reference`] oracle) for every valid ε.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClassicFptas;

impl RspKernel for ClassicFptas {
    fn kind(&self) -> KernelKind {
        KernelKind::Classic
    }

    fn solve_with(
        &self,
        graph: &DiGraph,
        s: NodeId,
        t: NodeId,
        delay_bound: i64,
        eps_num: u32,
        eps_den: u32,
        scratch: &mut DpScratch,
    ) -> Result<Option<CspPath>, KernelError> {
        let (num, den) = validate_eps(eps_num, eps_den)?;
        Ok(rsp_fptas_with(graph, s, t, delay_bound, num, den, scratch))
    }
}

/// The Holzmüller-style interval-scaling FPTAS
/// ([`crate::csp::rsp_fptas_interval_with`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct IntervalScalingFptas;

impl RspKernel for IntervalScalingFptas {
    fn kind(&self) -> KernelKind {
        KernelKind::Interval
    }

    fn solve_with(
        &self,
        graph: &DiGraph,
        s: NodeId,
        t: NodeId,
        delay_bound: i64,
        eps_num: u32,
        eps_den: u32,
        scratch: &mut DpScratch,
    ) -> Result<Option<CspPath>, KernelError> {
        let (num, den) = validate_eps(eps_num, eps_den)?;
        Ok(rsp_fptas_interval_with(
            graph,
            s,
            t,
            delay_bound,
            num,
            den,
            scratch,
        ))
    }
}

/// The shared static instance for a kind — kernels are stateless, so one
/// `&'static dyn` per backend serves every caller.
#[must_use]
pub fn kernel(kind: KernelKind) -> &'static dyn RspKernel {
    match kind {
        KernelKind::Classic => &ClassicFptas,
        KernelKind::Interval => &IntervalScalingFptas,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cancel::CancelToken;
    use crate::csp::rsp_fptas;

    fn tradeoff_graph() -> DiGraph {
        DiGraph::from_edges(
            4,
            &[(0, 1, 1, 10), (1, 3, 1, 10), (0, 2, 10, 1), (2, 3, 10, 1)],
        )
    }

    #[test]
    fn kind_round_trips_strings_and_serde() {
        for kind in KERNEL_KINDS {
            assert_eq!(kind.as_str().parse::<KernelKind>(), Ok(kind));
            assert_eq!(
                KernelKind::from_content(&kind.to_content()),
                Ok(kind),
                "{kind}"
            );
        }
        assert!("flat".parse::<KernelKind>().is_err());
        assert!(KernelKind::from_content(&Content::Int(0)).is_err());
    }

    #[test]
    fn classic_kernel_is_bit_identical_to_raw_fptas() {
        let g = tradeoff_graph();
        for d in [1i64, 5, 11, 20] {
            for (num, den) in [(1u32, 2u32), (1, 4), (3, 10), (1, 1)] {
                let raw = rsp_fptas(&g, NodeId(0), NodeId(3), d, num, den);
                let via = kernel(KernelKind::Classic)
                    .solve(&g, NodeId(0), NodeId(3), d, num, den)
                    .unwrap();
                assert_eq!(raw, via, "d={d} eps={num}/{den}");
            }
        }
    }

    #[test]
    fn interval_kernel_meets_guarantees() {
        let g = tradeoff_graph();
        // Loose budget: OPT = 2.
        let p = kernel(KernelKind::Interval)
            .solve(&g, NodeId(0), NodeId(3), 20, 1, 2)
            .unwrap()
            .unwrap();
        assert!(p.delay <= 20);
        assert!(2 * p.cost <= 3 * 2, "cost {} > (1+1/2)·2", p.cost);
        // Tight budget: OPT = 20.
        let p = kernel(KernelKind::Interval)
            .solve(&g, NodeId(0), NodeId(3), 5, 1, 2)
            .unwrap()
            .unwrap();
        assert!(p.delay <= 5);
        assert!(2 * p.cost <= 3 * 20);
        // Infeasible.
        assert_eq!(
            kernel(KernelKind::Interval)
                .solve(&g, NodeId(0), NodeId(3), 1, 1, 2)
                .unwrap(),
            None
        );
    }

    #[test]
    fn epsilon_edge_cases_are_structured() {
        let g = tradeoff_graph();
        for kind in KERNEL_KINDS {
            let k = kernel(kind);
            // ε = 0 in either slot: structured rejection, no panic.
            assert_eq!(
                k.solve(&g, NodeId(0), NodeId(3), 20, 0, 4),
                Err(KernelError::InvalidEpsilon { num: 0, den: 4 }),
                "{kind}"
            );
            assert_eq!(
                k.solve(&g, NodeId(0), NodeId(3), 20, 1, 0),
                Err(KernelError::InvalidEpsilon { num: 1, den: 0 }),
                "{kind}"
            );
            // Huge ε clamps to 1: still a valid answer within factor 2.
            let p = k
                .solve(&g, NodeId(0), NodeId(3), 20, 1000, 1)
                .unwrap()
                .unwrap();
            assert!(p.delay <= 20 && p.cost <= 4, "{kind}: cost {}", p.cost);
            // Tiny ε is valid (just expensive): answer is near-exact.
            let p = k
                .solve(&g, NodeId(0), NodeId(3), 20, 1, 1000)
                .unwrap()
                .unwrap();
            assert_eq!((p.cost, p.delay), (2, 20), "{kind}");
        }
        // Huge-ε clamp equals an explicit ε = 1 run, kernel by kernel.
        for kind in KERNEL_KINDS {
            let k = kernel(kind);
            let clamped = k.solve(&g, NodeId(0), NodeId(3), 20, 7, 3).unwrap();
            let unit = k.solve(&g, NodeId(0), NodeId(3), 20, 1, 1).unwrap();
            assert_eq!(clamped, unit, "{kind}");
        }
    }

    #[test]
    fn cancellation_mid_interval_solve_returns_none_and_recovers() {
        let g = tradeoff_graph();
        let mut scratch = DpScratch::new();
        let token = CancelToken::cancellable();
        token.cancel();
        scratch.set_cancel(token);
        assert_eq!(
            kernel(KernelKind::Interval)
                .solve_with(&g, NodeId(0), NodeId(3), 20, 1, 16, &mut scratch)
                .unwrap(),
            None
        );
        scratch.set_cancel(CancelToken::never());
        let p = kernel(KernelKind::Interval)
            .solve_with(&g, NodeId(0), NodeId(3), 20, 1, 16, &mut scratch)
            .unwrap()
            .unwrap();
        assert_eq!((p.cost, p.delay), (2, 20));
    }
}
