//! Exact reduced rationals over `i128`.

use crate::gcd;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An exact rational number `num/den` with `den > 0` and `gcd(|num|, den) == 1`.
///
/// All arithmetic is overflow-checked; the suite's instances keep magnitudes
/// tiny relative to `i128`, so a panic here indicates a logic error rather
/// than an expected runtime condition.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rat {
    num: i128,
    den: i128,
}

impl Rat {
    /// Zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// One.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Builds `num/den`, reducing to canonical form. Panics if `den == 0`.
    #[must_use]
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "Rat denominator must be nonzero");
        let sign = if den < 0 { -1 } else { 1 };
        let (mut num, mut den) = (num * sign, den * sign);
        let g = gcd(num.abs(), den);
        if g > 1 {
            num /= g;
            den /= g;
        }
        Rat { num, den }
    }

    /// An integer as a rational.
    #[must_use]
    pub const fn int(n: i128) -> Self {
        Rat { num: n, den: 1 }
    }

    /// Numerator of the canonical form (sign-carrying).
    #[must_use]
    pub const fn num(self) -> i128 {
        self.num
    }

    /// Denominator of the canonical form (always positive).
    #[must_use]
    pub const fn den(self) -> i128 {
        self.den
    }

    /// True iff the value is an integer.
    #[must_use]
    pub const fn is_integer(self) -> bool {
        self.den == 1
    }

    /// True iff the value is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.num == 0
    }

    /// True iff the value is strictly negative.
    #[must_use]
    pub const fn is_negative(self) -> bool {
        self.num < 0
    }

    /// True iff the value is strictly positive.
    #[must_use]
    pub const fn is_positive(self) -> bool {
        self.num > 0
    }

    /// Sign as -1 / 0 / +1.
    #[must_use]
    pub const fn signum(self) -> i32 {
        if self.num < 0 {
            -1
        } else if self.num > 0 {
            1
        } else {
            0
        }
    }

    /// Absolute value.
    #[must_use]
    pub const fn abs(self) -> Self {
        Rat {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Multiplicative inverse; panics on zero.
    #[must_use]
    pub fn recip(self) -> Self {
        assert!(self.num != 0, "Rat::recip of zero");
        Rat::new(self.den, self.num)
    }

    /// Largest integer `<= self`.
    #[must_use]
    pub fn floor(self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Smallest integer `>= self`.
    #[must_use]
    pub fn ceil(self) -> i128 {
        -((-self.num).div_euclid(self.den))
    }

    /// Lossy conversion for reporting only (never used in algorithm logic).
    #[must_use]
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Checked addition used by all operator impls.
    fn checked_add(self, rhs: Self) -> Self {
        // Cross-reduce before multiplying to keep intermediates small.
        let g = gcd(self.den, rhs.den);
        let (da, db) = (self.den / g, rhs.den / g);
        let num = self
            .num
            .checked_mul(db)
            .and_then(|a| rhs.num.checked_mul(da).and_then(|b| a.checked_add(b)))
            .expect("Rat add overflow");
        let den = self.den.checked_mul(db).expect("Rat add overflow");
        Rat::new(num, den)
    }

    fn checked_mul(self, rhs: Self) -> Self {
        // Cross-cancel to keep intermediates small.
        let g1 = gcd(self.num.abs(), rhs.den);
        let g2 = gcd(rhs.num.abs(), self.den);
        let num = (self.num / g1)
            .checked_mul(rhs.num / g2)
            .expect("Rat mul overflow");
        let den = (self.den / g2)
            .checked_mul(rhs.den / g1)
            .expect("Rat mul overflow");
        Rat::new(num, den)
    }

    /// The mediant `(a+c)/(b+d)`, useful for Stern–Brocot style searches.
    #[must_use]
    pub fn mediant(self, rhs: Self) -> Self {
        Rat::new(
            self.num.checked_add(rhs.num).expect("mediant overflow"),
            self.den.checked_add(rhs.den).expect("mediant overflow"),
        )
    }

    /// Minimum of two rationals.
    #[must_use]
    pub fn min(self, rhs: Self) -> Self {
        if self <= rhs {
            self
        } else {
            rhs
        }
    }

    /// Maximum of two rationals.
    #[must_use]
    pub fn max(self, rhs: Self) -> Self {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }
}

impl Default for Rat {
    fn default() -> Self {
        Rat::ZERO
    }
}

impl From<i64> for Rat {
    fn from(n: i64) -> Self {
        Rat::int(i128::from(n))
    }
}

impl From<i128> for Rat {
    fn from(n: i128) -> Self {
        Rat::int(n)
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, rhs: Rat) -> Rat {
        self.checked_add(rhs)
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, rhs: Rat) -> Rat {
        self.checked_add(-rhs)
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, rhs: Rat) -> Rat {
        self.checked_mul(rhs)
    }
}

impl Div for Rat {
    type Output = Rat;
    fn div(self, rhs: Rat) -> Rat {
        self.checked_mul(rhs.recip())
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Rat {
    fn add_assign(&mut self, rhs: Rat) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rat {
    fn sub_assign(&mut self, rhs: Rat) {
        *self = *self - rhs;
    }
}

impl MulAssign for Rat {
    fn mul_assign(&mut self, rhs: Rat) {
        *self = *self * rhs;
    }
}

impl DivAssign for Rat {
    fn div_assign(&mut self, rhs: Rat) {
        *self = *self / rhs;
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d with b,d > 0  <=>  a*d vs c*b. Cross-reduce first.
        let g = gcd(self.den, other.den);
        let (da, db) = (self.den / g, other.den / g);
        let lhs = self.num.checked_mul(db).expect("Rat cmp overflow");
        let rhs = other.num.checked_mul(da).expect("Rat cmp overflow");
        lhs.cmp(&rhs)
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn canonical_form() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(-2, -4), Rat::new(1, 2));
        assert_eq!(Rat::new(2, -4), Rat::new(-1, 2));
        assert_eq!(Rat::new(0, -5), Rat::ZERO);
        assert_eq!(Rat::new(6, 3), Rat::int(2));
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(1, 0);
    }

    #[test]
    fn arithmetic() {
        let a = Rat::new(1, 2);
        let b = Rat::new(1, 3);
        assert_eq!(a + b, Rat::new(5, 6));
        assert_eq!(a - b, Rat::new(1, 6));
        assert_eq!(a * b, Rat::new(1, 6));
        assert_eq!(a / b, Rat::new(3, 2));
        assert_eq!(-a, Rat::new(-1, 2));
    }

    #[test]
    fn ordering() {
        assert!(Rat::new(1, 3) < Rat::new(1, 2));
        assert!(Rat::new(-1, 2) < Rat::new(-1, 3));
        assert!(Rat::new(7, 7) == Rat::ONE);
        assert!(Rat::new(-5, 3) < Rat::ZERO);
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(Rat::new(7, 2).floor(), 3);
        assert_eq!(Rat::new(7, 2).ceil(), 4);
        assert_eq!(Rat::new(-7, 2).floor(), -4);
        assert_eq!(Rat::new(-7, 2).ceil(), -3);
        assert_eq!(Rat::int(5).floor(), 5);
        assert_eq!(Rat::int(5).ceil(), 5);
    }

    #[test]
    fn recip_and_signum() {
        assert_eq!(Rat::new(3, 4).recip(), Rat::new(4, 3));
        assert_eq!(Rat::new(-3, 4).recip(), Rat::new(-4, 3));
        assert_eq!(Rat::new(-3, 4).signum(), -1);
        assert_eq!(Rat::ZERO.signum(), 0);
        assert_eq!(Rat::ONE.signum(), 1);
    }

    #[test]
    fn display() {
        assert_eq!(Rat::new(3, 6).to_string(), "1/2");
        assert_eq!(Rat::int(-4).to_string(), "-4");
    }

    #[test]
    fn mediant_lies_between() {
        let a = Rat::new(1, 3);
        let b = Rat::new(1, 2);
        let m = a.mediant(b);
        assert!(a < m && m < b);
    }

    fn small_rat() -> impl Strategy<Value = Rat> {
        (-1000i128..=1000, 1i128..=1000).prop_map(|(n, d)| Rat::new(n, d))
    }

    proptest! {
        #[test]
        fn prop_add_commutative(a in small_rat(), b in small_rat()) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn prop_add_associative(a in small_rat(), b in small_rat(), c in small_rat()) {
            prop_assert_eq!((a + b) + c, a + (b + c));
        }

        #[test]
        fn prop_mul_distributes(a in small_rat(), b in small_rat(), c in small_rat()) {
            prop_assert_eq!(a * (b + c), a * b + a * c);
        }

        #[test]
        fn prop_sub_inverse(a in small_rat(), b in small_rat()) {
            prop_assert_eq!(a + b - b, a);
        }

        #[test]
        fn prop_div_inverse(a in small_rat(), b in small_rat()) {
            prop_assume!(!b.is_zero());
            prop_assert_eq!(a * b / b, a);
        }

        #[test]
        fn prop_always_reduced(a in small_rat()) {
            prop_assert!(a.den() > 0);
            prop_assert_eq!(crate::gcd(a.num().abs(), a.den()), if a.is_zero() { a.den() } else { 1 });
        }

        #[test]
        fn prop_ordering_matches_f64(a in small_rat(), b in small_rat()) {
            // f64 is exact for these small magnitudes.
            let (fa, fb) = (a.to_f64(), b.to_f64());
            prop_assert_eq!(a.cmp(&b), fa.partial_cmp(&fb).unwrap());
        }

        #[test]
        fn prop_floor_ceil_bracket(a in small_rat()) {
            prop_assert!(Rat::int(a.floor()) <= a);
            prop_assert!(a <= Rat::int(a.ceil()));
            prop_assert!(a.ceil() - a.floor() <= 1);
        }
    }
}
