//! Exact arithmetic substrate for the `krsp` suite.
//!
//! Everything in the paper's analysis is stated over integers and rationals
//! (edge weights are integral; Lagrange multipliers, ratio thresholds
//! `ΔD/ΔC`, and simplex tableaux are rationals). This crate provides:
//!
//! * [`Rat`] — an exact, always-reduced rational over `i128` with
//!   overflow-checked arithmetic (panics with a descriptive message rather
//!   than silently wrapping; the magnitudes arising from the paper's
//!   algorithms on the workloads in this repository stay far below the
//!   `i128` range, and the checks make any violation loud).
//! * [`Lex2`] — a lexicographic two-component weight used to break ties in
//!   min-cost-flow computations exactly (primary scalarized weight, then
//!   delay), which is how the parametric phase-1 backend extracts *both*
//!   extreme optimal flows at a Lagrangian breakpoint without floats.
//! * [`gcd`]/[`lcm`] helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lex;
pub mod rat;

pub use lex::Lex2;
pub use rat::Rat;

/// Greatest common divisor of two non-negative `i128`s.
///
/// `gcd(0, 0) == 0` by convention.
#[must_use]
pub fn gcd(mut a: i128, mut b: i128) -> i128 {
    debug_assert!(a >= 0 && b >= 0, "gcd expects non-negative inputs");
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

/// Least common multiple; panics on overflow.
#[must_use]
pub fn lcm(a: i128, b: i128) -> i128 {
    if a == 0 || b == 0 {
        return 0;
    }
    let g = gcd(a.abs(), b.abs());
    (a / g).checked_mul(b).expect("lcm overflow").abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(0, 7), 7);
        assert_eq!(gcd(7, 0), 7);
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(17, 13), 1);
        assert_eq!(gcd(100, 100), 100);
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm(0, 5), 0);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(-4, 6), 12);
        assert_eq!(lcm(7, 13), 91);
    }
}
