//! Exact arithmetic substrate for the `krsp` suite.
//!
//! Everything in the paper's analysis is stated over integers and rationals
//! (edge weights are integral; Lagrange multipliers, ratio thresholds
//! `ΔD/ΔC`, and simplex tableaux are rationals). This crate provides:
//!
//! * [`Rat`] — an exact, always-reduced rational over `i128` with
//!   overflow-checked arithmetic (panics with a descriptive message rather
//!   than silently wrapping; the magnitudes arising from the paper's
//!   algorithms on the workloads in this repository stay far below the
//!   `i128` range, and the checks make any violation loud).
//! * [`Lex2`] — a lexicographic two-component weight used to break ties in
//!   min-cost-flow computations exactly (primary scalarized weight, then
//!   delay), which is how the parametric phase-1 backend extracts *both*
//!   extreme optimal flows at a Lagrangian breakpoint without floats.
//! * [`gcd`]/[`lcm`] helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lex;
pub mod rat;

pub use lex::Lex2;
pub use rat::Rat;

/// Greatest common divisor of two non-negative `i128`s.
///
/// `gcd(0, 0) == 0` by convention.
#[must_use]
pub fn gcd(mut a: i128, mut b: i128) -> i128 {
    debug_assert!(a >= 0 && b >= 0, "gcd expects non-negative inputs");
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

/// Least common multiple; panics on overflow.
#[must_use]
pub fn lcm(a: i128, b: i128) -> i128 {
    if a == 0 || b == 0 {
        return 0;
    }
    let g = gcd(a.abs(), b.abs());
    (a / g).checked_mul(b).expect("lcm overflow").abs()
}

/// Exact integer square root: the largest `r` with `r·r ≤ n`.
///
/// Newton's method seeded from the bit length, so the iterate starts at or
/// above `√n` and decreases monotonically — no floating-point round trip,
/// which matters because `f64` has only 53 mantissa bits and misrounds
/// square roots of products like `lb·ub` near `i64::MAX²`.
#[must_use]
pub fn isqrt(n: u128) -> u128 {
    if n < 2 {
        return n;
    }
    // 2^⌈bits/2⌉ ≥ √n, the required starting point for monotone descent.
    let bits = 128 - n.leading_zeros();
    let mut x = 1u128 << bits.div_ceil(2);
    loop {
        let y = (x + n / x) / 2;
        if y >= x {
            debug_assert!(x * x <= n && (x + 1).checked_mul(x + 1).is_none_or(|s| s > n));
            return x;
        }
        x = y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(0, 7), 7);
        assert_eq!(gcd(7, 0), 7);
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(17, 13), 1);
        assert_eq!(gcd(100, 100), 100);
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm(0, 5), 0);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(-4, 6), 12);
        assert_eq!(lcm(7, 13), 91);
    }

    #[test]
    fn isqrt_small_values() {
        for n in 0u128..=10_000 {
            let r = isqrt(n);
            assert!(r * r <= n && (r + 1) * (r + 1) > n, "isqrt({n}) = {r}");
        }
    }

    #[test]
    fn isqrt_perfect_squares_and_neighbors() {
        for r in [1u128, 2, 1 << 20, 1 << 40, (1 << 63) - 1, u64::MAX as u128] {
            let sq = r * r;
            assert_eq!(isqrt(sq), r);
            assert_eq!(isqrt(sq - 1), r - 1);
            assert_eq!(isqrt(sq + 1), r);
        }
    }

    #[test]
    fn isqrt_extreme_magnitudes_where_f64_misrounds() {
        // i64::MAX² has 126 bits; f64's 53-bit mantissa rounds its square
        // root up to 2^63, one past the true floor. The exact routine must
        // not.
        let m = i64::MAX as u128;
        assert_eq!(isqrt(m * m), m);
        assert_eq!(isqrt(m * m - 1), m - 1);
        assert_eq!(isqrt(u128::MAX), (1u128 << 64) - 1);
    }

    proptest::proptest! {
        #[test]
        fn prop_isqrt_is_exact_floor(hi in 0u64..=u64::MAX, lo in 0u64..=u64::MAX) {
            let n = (u128::from(hi) << 64) | u128::from(lo);
            let r = isqrt(n);
            proptest::prop_assert!(r.checked_mul(r).is_some_and(|s| s <= n));
            proptest::prop_assert!((r + 1).checked_mul(r + 1).is_none_or(|s| s > n));
        }
    }
}
