//! Lexicographic two-component weights.
//!
//! The parametric (Lagrangian) phase-1 backend must, at a multiplier value
//! `λ = p/q`, obtain both the minimum-delay and the maximum-delay flow among
//! all flows minimizing the scalarized weight `q·c + p·d`. Instead of solving
//! with floats and fragile tie-breaking, we run min-cost-flow over [`Lex2`]
//! weights `(q·c + p·d, ±d)` — exact integer lexicographic comparison.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Neg, Sub, SubAssign};

/// A pair `(primary, secondary)` compared and added lexicographically
/// (component-wise addition, lexicographic ordering).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Lex2 {
    /// Primary component — dominates comparisons.
    pub primary: i128,
    /// Secondary component — breaks ties.
    pub secondary: i128,
}

impl Lex2 {
    /// The additive identity.
    pub const ZERO: Lex2 = Lex2 {
        primary: 0,
        secondary: 0,
    };

    /// Builds a weight from its two components.
    #[must_use]
    pub const fn new(primary: i128, secondary: i128) -> Self {
        Lex2 { primary, secondary }
    }

    /// True iff strictly less than zero (lexicographically).
    #[must_use]
    pub fn is_negative(self) -> bool {
        self < Lex2::ZERO
    }
}

impl Add for Lex2 {
    type Output = Lex2;
    fn add(self, rhs: Lex2) -> Lex2 {
        Lex2 {
            primary: self
                .primary
                .checked_add(rhs.primary)
                .expect("Lex2 add overflow"),
            secondary: self
                .secondary
                .checked_add(rhs.secondary)
                .expect("Lex2 add overflow"),
        }
    }
}

impl Sub for Lex2 {
    type Output = Lex2;
    fn sub(self, rhs: Lex2) -> Lex2 {
        self + (-rhs)
    }
}

impl Neg for Lex2 {
    type Output = Lex2;
    fn neg(self) -> Lex2 {
        Lex2 {
            primary: -self.primary,
            secondary: -self.secondary,
        }
    }
}

impl AddAssign for Lex2 {
    fn add_assign(&mut self, rhs: Lex2) {
        *self = *self + rhs;
    }
}

impl SubAssign for Lex2 {
    fn sub_assign(&mut self, rhs: Lex2) {
        *self = *self - rhs;
    }
}

impl PartialOrd for Lex2 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Lex2 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.primary
            .cmp(&other.primary)
            .then(self.secondary.cmp(&other.secondary))
    }
}

impl fmt::Debug for Lex2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.primary, self.secondary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Lex2::new(1, 100) < Lex2::new(2, 0));
        assert!(Lex2::new(1, 1) < Lex2::new(1, 2));
        assert!(Lex2::new(-1, 100) < Lex2::ZERO);
        assert!(!Lex2::new(0, 0).is_negative());
        assert!(Lex2::new(0, -1).is_negative());
    }

    #[test]
    fn arithmetic() {
        let a = Lex2::new(1, 2);
        let b = Lex2::new(3, -5);
        assert_eq!(a + b, Lex2::new(4, -3));
        assert_eq!(a - b, Lex2::new(-2, 7));
        assert_eq!(-(a - b), b - a);
    }

    proptest! {
        #[test]
        fn prop_add_is_componentwise(
            a in (-1000i128..1000, -1000i128..1000),
            b in (-1000i128..1000, -1000i128..1000),
        ) {
            let x = Lex2::new(a.0, a.1);
            let y = Lex2::new(b.0, b.1);
            prop_assert_eq!(x + y, Lex2::new(a.0 + b.0, a.1 + b.1));
        }

        #[test]
        fn prop_total_order_consistent(
            a in (-10i128..10, -10i128..10),
            b in (-10i128..10, -10i128..10),
        ) {
            let x = Lex2::new(a.0, a.1);
            let y = Lex2::new(b.0, b.1);
            // Exactly one of <, ==, > holds and matches tuple ordering.
            prop_assert_eq!(x.cmp(&y), a.cmp(&b));
        }
    }
}
