//! Dense edge-membership sets.
//!
//! A kRSP solution is a set of edges forming `k` edge-disjoint `st`-paths —
//! equivalently a unit-capacity integral `st`-flow of value `k`
//! (Proposition 7). [`EdgeSet`] is the canonical representation used across
//! the suite; paths are recovered on demand via flow decomposition.

use crate::digraph::{DiGraph, EdgeId, NodeId};
use crate::{Cost, Delay};
use serde::{Deserialize, Serialize};

/// A subset of a graph's edges, stored densely as a bit vector.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeSet {
    bits: Vec<u64>,
    len: usize,
    count: usize,
}

impl EdgeSet {
    /// Empty set sized for `graph` (capacity = current edge count).
    #[must_use]
    pub fn new(graph: &DiGraph) -> Self {
        Self::with_capacity(graph.edge_count())
    }

    /// Empty set with room for `len` edges.
    #[must_use]
    pub fn with_capacity(len: usize) -> Self {
        EdgeSet {
            bits: vec![0; len.div_ceil(64)],
            len,
            count: 0,
        }
    }

    /// Builds a set from explicit edge ids.
    #[must_use]
    pub fn from_edges(len: usize, edges: &[EdgeId]) -> Self {
        let mut s = Self::with_capacity(len);
        for &e in edges {
            s.insert(e);
        }
        s
    }

    /// Capacity (number of edge slots, = graph edge count at creation).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Number of member edges.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// True iff the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Membership test.
    #[inline]
    #[must_use]
    pub fn contains(&self, e: EdgeId) -> bool {
        let i = e.index();
        debug_assert!(i < self.len, "edge id out of range for EdgeSet");
        self.bits[i / 64] >> (i % 64) & 1 == 1
    }

    /// Inserts `e`; returns true if it was absent.
    pub fn insert(&mut self, e: EdgeId) -> bool {
        let i = e.index();
        assert!(i < self.len, "edge id out of range for EdgeSet");
        let (w, b) = (i / 64, i % 64);
        let was = self.bits[w] >> b & 1 == 1;
        if !was {
            self.bits[w] |= 1 << b;
            self.count += 1;
        }
        !was
    }

    /// Removes `e`; returns true if it was present.
    pub fn remove(&mut self, e: EdgeId) -> bool {
        let i = e.index();
        assert!(i < self.len, "edge id out of range for EdgeSet");
        let (w, b) = (i / 64, i % 64);
        let was = self.bits[w] >> b & 1 == 1;
        if was {
            self.bits[w] &= !(1 << b);
            self.count -= 1;
        }
        was
    }

    /// Flips membership of `e` (the elementary `⊕` step).
    pub fn toggle(&mut self, e: EdgeId) {
        if !self.insert(e) {
            self.remove(e);
        }
    }

    /// Iterator over member edge ids in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.bits.iter().enumerate().flat_map(|(w, &word)| {
            let mut word = word;
            std::iter::from_fn(move || {
                if word == 0 {
                    None
                } else {
                    let b = word.trailing_zeros();
                    word &= word - 1;
                    Some(EdgeId((w * 64) as u32 + b))
                }
            })
        })
    }

    /// Total cost of the member edges in `graph`.
    #[must_use]
    pub fn total_cost(&self, graph: &DiGraph) -> Cost {
        self.iter().map(|e| graph.edge(e).cost).sum()
    }

    /// Total delay of the member edges in `graph`.
    #[must_use]
    pub fn total_delay(&self, graph: &DiGraph) -> Delay {
        self.iter().map(|e| graph.edge(e).delay).sum()
    }

    /// Net out-degree (out − in) of `v` within the set — the flow-excess
    /// check behind Propositions 7/8.
    #[must_use]
    pub fn excess(&self, graph: &DiGraph, v: NodeId) -> i64 {
        let outd = graph
            .out_edges(v)
            .iter()
            .filter(|&&e| self.contains(e))
            .count() as i64;
        let ind = graph
            .in_edges(v)
            .iter()
            .filter(|&&e| self.contains(e))
            .count() as i64;
        outd - ind
    }

    /// Verifies that the set is a unit-capacity integral `st`-flow of value
    /// `k`: excess `+k` at `s`, `−k` at `t`, `0` elsewhere.
    #[must_use]
    pub fn is_k_flow(&self, graph: &DiGraph, s: NodeId, t: NodeId, k: usize) -> bool {
        graph.node_iter().all(|v| {
            let want = if v == s {
                k as i64
            } else if v == t {
                -(k as i64)
            } else {
                0
            };
            self.excess(graph, v) == want
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn g() -> DiGraph {
        DiGraph::from_edges(
            4,
            &[
                (0, 1, 1, 1),
                (1, 3, 1, 1),
                (0, 2, 1, 1),
                (2, 3, 1, 1),
                (0, 3, 1, 1),
            ],
        )
    }

    #[test]
    fn insert_remove_toggle() {
        let graph = g();
        let mut s = EdgeSet::new(&graph);
        assert!(s.insert(EdgeId(0)));
        assert!(!s.insert(EdgeId(0)));
        assert!(s.contains(EdgeId(0)));
        assert_eq!(s.count(), 1);
        assert!(s.remove(EdgeId(0)));
        assert!(!s.remove(EdgeId(0)));
        assert!(s.is_empty());
        s.toggle(EdgeId(3));
        assert!(s.contains(EdgeId(3)));
        s.toggle(EdgeId(3));
        assert!(!s.contains(EdgeId(3)));
    }

    #[test]
    fn iter_in_order() {
        let graph = g();
        let s = EdgeSet::from_edges(graph.edge_count(), &[EdgeId(4), EdgeId(1), EdgeId(0)]);
        let got: Vec<_> = s.iter().collect();
        assert_eq!(got, vec![EdgeId(0), EdgeId(1), EdgeId(4)]);
    }

    #[test]
    fn totals() {
        let graph = g();
        let s = EdgeSet::from_edges(graph.edge_count(), &[EdgeId(0), EdgeId(1)]);
        assert_eq!(s.total_cost(&graph), 2);
        assert_eq!(s.total_delay(&graph), 2);
    }

    #[test]
    fn k_flow_check() {
        let graph = g();
        // Two disjoint paths 0-1-3 and 0-2-3.
        let s = EdgeSet::from_edges(
            graph.edge_count(),
            &[EdgeId(0), EdgeId(1), EdgeId(2), EdgeId(3)],
        );
        assert!(s.is_k_flow(&graph, NodeId(0), NodeId(3), 2));
        assert!(!s.is_k_flow(&graph, NodeId(0), NodeId(3), 1));
        // Drop one edge: conservation broken.
        let s = EdgeSet::from_edges(graph.edge_count(), &[EdgeId(0), EdgeId(1), EdgeId(2)]);
        assert!(!s.is_k_flow(&graph, NodeId(0), NodeId(3), 2));
    }

    #[test]
    fn excess() {
        let graph = g();
        let s = EdgeSet::from_edges(graph.edge_count(), &[EdgeId(0)]);
        assert_eq!(s.excess(&graph, NodeId(0)), 1);
        assert_eq!(s.excess(&graph, NodeId(1)), -1);
        assert_eq!(s.excess(&graph, NodeId(2)), 0);
    }

    proptest! {
        #[test]
        fn prop_count_matches_iter(ids in proptest::collection::vec(0u32..200, 0..100)) {
            let mut s = EdgeSet::with_capacity(200);
            for &i in &ids { s.insert(EdgeId(i)); }
            prop_assert_eq!(s.count(), s.iter().count());
            let mut sorted: Vec<u32> = ids.clone();
            sorted.sort_unstable();
            sorted.dedup();
            let got: Vec<u32> = s.iter().map(|e| e.0).collect();
            prop_assert_eq!(got, sorted);
        }

        #[test]
        fn prop_toggle_twice_identity(ids in proptest::collection::vec(0u32..64, 0..20)) {
            let mut s = EdgeSet::with_capacity(64);
            for &i in &ids { s.insert(EdgeId(i)); }
            let before = s.clone();
            s.toggle(EdgeId(5));
            s.toggle(EdgeId(5));
            prop_assert_eq!(before, s);
        }
    }
}
