//! Validated paths and cycles over a [`DiGraph`].

use crate::digraph::{DiGraph, EdgeId, NodeId};
use crate::{Cost, Delay};
use serde::{Deserialize, Serialize};

/// A directed path: a nonempty sequence of edges where consecutive edges
/// share endpoints (`dst` of one = `src` of the next).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Path {
    edges: Vec<EdgeId>,
    src: NodeId,
    dst: NodeId,
    cost: Cost,
    delay: Delay,
}

impl Path {
    /// Builds a path from an edge sequence, validating connectivity.
    ///
    /// Returns `None` if the sequence is empty or not contiguous.
    #[must_use]
    pub fn new(graph: &DiGraph, edges: Vec<EdgeId>) -> Option<Self> {
        let first = *edges.first()?;
        let mut cur = graph.edge(first).src;
        let mut cost = 0;
        let mut delay = 0;
        for &e in &edges {
            let r = graph.edge(e);
            if r.src != cur {
                return None;
            }
            cur = r.dst;
            cost += r.cost;
            delay += r.delay;
        }
        Some(Path {
            src: graph.edge(first).src,
            dst: cur,
            edges,
            cost,
            delay,
        })
    }

    /// The edge ids, in order.
    #[must_use]
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// First node on the path.
    #[must_use]
    pub fn source(&self) -> NodeId {
        self.src
    }

    /// Last node on the path.
    #[must_use]
    pub fn target(&self) -> NodeId {
        self.dst
    }

    /// Number of edges.
    #[must_use]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Always false (paths are nonempty by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total cost `c(P)`.
    #[must_use]
    pub fn cost(&self) -> Cost {
        self.cost
    }

    /// Total delay `d(P)`.
    #[must_use]
    pub fn delay(&self) -> Delay {
        self.delay
    }

    /// The node sequence `src, …, dst` (length `len()+1`).
    #[must_use]
    pub fn nodes(&self, graph: &DiGraph) -> Vec<NodeId> {
        let mut v = Vec::with_capacity(self.edges.len() + 1);
        v.push(self.src);
        for &e in &self.edges {
            v.push(graph.edge(e).dst);
        }
        v
    }

    /// True iff no edge repeats and no intermediate node repeats.
    #[must_use]
    pub fn is_simple(&self, graph: &DiGraph) -> bool {
        let nodes = self.nodes(graph);
        let mut seen = vec![false; graph.node_count()];
        for &v in &nodes {
            if seen[v.index()] {
                return false;
            }
            seen[v.index()] = true;
        }
        true
    }
}

/// A directed cycle: a contiguous edge sequence returning to its start node.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cycle {
    edges: Vec<EdgeId>,
    cost: Cost,
    delay: Delay,
}

impl Cycle {
    /// Builds a cycle from an edge sequence, validating closure.
    #[must_use]
    pub fn new(graph: &DiGraph, edges: Vec<EdgeId>) -> Option<Self> {
        let p = Path::new(graph, edges)?;
        if p.source() != p.target() {
            return None;
        }
        Some(Cycle {
            cost: p.cost(),
            delay: p.delay(),
            edges: p.edges,
        })
    }

    /// The edge ids, in cyclic order.
    #[must_use]
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Number of edges.
    #[must_use]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Always false (cycles are nonempty by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total cost `c(O)`.
    #[must_use]
    pub fn cost(&self) -> Cost {
        self.cost
    }

    /// Total delay `d(O)`.
    #[must_use]
    pub fn delay(&self) -> Delay {
        self.delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> DiGraph {
        DiGraph::from_edges(
            4,
            &[
                (0, 1, 1, 10),
                (1, 2, 2, 20),
                (2, 3, 3, 30),
                (3, 0, 4, 40),
                (2, 0, 5, 50),
            ],
        )
    }

    #[test]
    fn valid_path() {
        let graph = g();
        let p = Path::new(&graph, vec![EdgeId(0), EdgeId(1), EdgeId(2)]).unwrap();
        assert_eq!(p.source(), NodeId(0));
        assert_eq!(p.target(), NodeId(3));
        assert_eq!(p.cost(), 6);
        assert_eq!(p.delay(), 60);
        assert_eq!(p.len(), 3);
        assert_eq!(
            p.nodes(&graph),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
        assert!(p.is_simple(&graph));
    }

    #[test]
    fn broken_path_rejected() {
        let graph = g();
        assert!(Path::new(&graph, vec![EdgeId(0), EdgeId(2)]).is_none());
        assert!(Path::new(&graph, vec![]).is_none());
    }

    #[test]
    fn cycle_detection() {
        let graph = g();
        let c = Cycle::new(&graph, vec![EdgeId(0), EdgeId(1), EdgeId(2), EdgeId(3)]).unwrap();
        assert_eq!(c.cost(), 10);
        assert_eq!(c.delay(), 100);
        assert_eq!(c.len(), 4);
        // Open path is not a cycle.
        assert!(Cycle::new(&graph, vec![EdgeId(0), EdgeId(1)]).is_none());
        // Shorter cycle via edge 4.
        let c2 = Cycle::new(&graph, vec![EdgeId(0), EdgeId(1), EdgeId(4)]).unwrap();
        assert_eq!(c2.cost(), 8);
    }

    #[test]
    fn non_simple_path() {
        let graph = g();
        // 0-1-2-0-1 revisits nodes.
        let p = Path::new(&graph, vec![EdgeId(0), EdgeId(1), EdgeId(4), EdgeId(0)]).unwrap();
        assert!(!p.is_simple(&graph));
    }
}
