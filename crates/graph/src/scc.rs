//! Strongly connected components (Tarjan, iterative).
//!
//! Cycle-cancellation searches only ever find cycles *inside* a strongly
//! connected component of the residual graph, so the bicameral engines
//! restrict their layered constructions to nontrivial SCCs — often a small
//! fraction of the graph once most solution edges have no useful reversal.

use crate::digraph::{DiGraph, NodeId};

/// The SCC partition of a digraph.
#[derive(Clone, Debug)]
pub struct SccPartition {
    /// `component[v]` = component id of node `v` (ids are dense, in
    /// reverse topological order of the condensation).
    pub component: Vec<usize>,
    /// Number of components.
    pub count: usize,
}

impl SccPartition {
    /// Nodes grouped by component.
    #[must_use]
    pub fn groups(&self) -> Vec<Vec<NodeId>> {
        let mut g = vec![Vec::new(); self.count];
        for (v, &c) in self.component.iter().enumerate() {
            g[c].push(NodeId(v as u32));
        }
        g
    }

    /// True iff `u` and `v` are in the same component.
    #[must_use]
    pub fn same(&self, u: NodeId, v: NodeId) -> bool {
        self.component[u.index()] == self.component[v.index()]
    }

    /// Component ids whose member count is ≥ 2, or which contain a
    /// self-loop — the only components that can host cycles.
    #[must_use]
    pub fn cyclic_components(&self, graph: &DiGraph) -> Vec<usize> {
        let mut size = vec![0usize; self.count];
        for &c in &self.component {
            size[c] += 1;
        }
        let mut has_loop = vec![false; self.count];
        for (_, e) in graph.edge_iter() {
            if e.src == e.dst {
                has_loop[self.component[e.src.index()]] = true;
            }
        }
        (0..self.count)
            .filter(|&c| size[c] >= 2 || has_loop[c])
            .collect()
    }
}

/// Computes the strongly connected components of `graph` with an iterative
/// Tarjan traversal (no recursion — safe for deep graphs).
#[must_use]
pub fn tarjan_scc(graph: &DiGraph) -> SccPartition {
    let n = graph.node_count();
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![UNSET; n];
    let mut on_stack = vec![false; n];
    let mut component = vec![UNSET; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut count = 0usize;

    // Explicit DFS frames: (node, out-edge cursor).
    let mut frames: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != UNSET {
            continue;
        }
        frames.push((root, 0));
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
            let out = graph.out_edges(NodeId(v as u32));
            if *cursor < out.len() {
                let e = out[*cursor];
                *cursor += 1;
                let w = graph.edge(e).dst.index();
                if index[w] == UNSET {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&mut (parent, _)) = frames.last_mut() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    // v roots a component: pop the stack down to v.
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        component[w] = count;
                        if w == v {
                            break;
                        }
                    }
                    count += 1;
                }
            }
        }
    }
    debug_assert!(component.iter().all(|&c| c != UNSET));
    SccPartition { component, count }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn two_cycles_and_a_bridge() {
        // 0↔1 and 2↔3 with a one-way bridge 1→2; node 4 isolated.
        let g = DiGraph::from_edges(
            5,
            &[
                (0, 1, 0, 0),
                (1, 0, 0, 0),
                (2, 3, 0, 0),
                (3, 2, 0, 0),
                (1, 2, 0, 0),
            ],
        );
        let p = tarjan_scc(&g);
        assert_eq!(p.count, 3);
        assert!(p.same(NodeId(0), NodeId(1)));
        assert!(p.same(NodeId(2), NodeId(3)));
        assert!(!p.same(NodeId(1), NodeId(2)));
        assert!(!p.same(NodeId(0), NodeId(4)));
        let cyclic = p.cyclic_components(&g);
        assert_eq!(cyclic.len(), 2);
    }

    #[test]
    fn dag_is_all_singletons() {
        let g = DiGraph::from_edges(4, &[(0, 1, 0, 0), (1, 2, 0, 0), (0, 3, 0, 0)]);
        let p = tarjan_scc(&g);
        assert_eq!(p.count, 4);
        assert!(p.cyclic_components(&g).is_empty());
    }

    #[test]
    fn self_loop_is_cyclic() {
        let g = DiGraph::from_edges(2, &[(0, 0, 0, 0), (0, 1, 0, 0)]);
        let p = tarjan_scc(&g);
        assert_eq!(p.count, 2);
        assert_eq!(p.cyclic_components(&g), vec![p.component[0]]);
    }

    #[test]
    fn full_cycle_single_component() {
        let edges: Vec<(u32, u32, i64, i64)> = (0..6).map(|i| (i, (i + 1) % 6, 0, 0)).collect();
        let g = DiGraph::from_edges(6, &edges);
        let p = tarjan_scc(&g);
        assert_eq!(p.count, 1);
        assert_eq!(p.groups()[0].len(), 6);
    }

    /// Oracle: u,v strongly connected iff v reachable from u AND u from v.
    fn reachable(g: &DiGraph, from: NodeId) -> Vec<bool> {
        let mut seen = vec![false; g.node_count()];
        let mut stack = vec![from];
        seen[from.index()] = true;
        while let Some(v) = stack.pop() {
            for &e in g.out_edges(v) {
                let w = g.edge(e).dst;
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    stack.push(w);
                }
            }
        }
        seen
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_matches_mutual_reachability(
            edges in proptest::collection::vec((0u32..10, 0u32..10), 0..40),
        ) {
            let list: Vec<(u32, u32, i64, i64)> =
                edges.iter().map(|&(u, v)| (u, v, 0, 0)).collect();
            let g = DiGraph::from_edges(10, &list);
            let p = tarjan_scc(&g);
            let reach: Vec<Vec<bool>> =
                (0..10).map(|v| reachable(&g, NodeId(v))).collect();
            #[allow(clippy::needless_range_loop)]
            for u in 0..10usize {
                for v in 0..10usize {
                    let mutual = reach[u][v] && reach[v][u];
                    prop_assert_eq!(
                        p.same(NodeId(u as u32), NodeId(v as u32)),
                        mutual,
                        "nodes {} and {}", u, v
                    );
                }
            }
        }
    }
}
