//! Compact adjacency-list digraph with parallel-edge support.

use crate::{Cost, Delay};
use serde::{Content, DeError, Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Identifier of a node, dense in `0..graph.node_count()`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifier of an edge, dense in `0..graph.edge_count()`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The node index as a `usize` (for direct array indexing).
    #[inline]
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The edge index as a `usize` (for direct array indexing).
    #[inline]
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One stored edge: endpoints plus the two QoS attributes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeRef {
    /// Tail (source endpoint).
    pub src: NodeId,
    /// Head (target endpoint).
    pub dst: NodeId,
    /// Edge cost `c(e)`.
    pub cost: Cost,
    /// Edge delay `d(e)`.
    pub delay: Delay,
}

/// A directed multigraph with per-edge cost and delay.
///
/// Nodes are dense integers; edges keep insertion order and may be parallel
/// (same endpoints) or self-loops — both arise in residual constructions.
///
/// The adjacency arrays are behind `Arc` so weight-only derivatives
/// ([`DiGraph::with_updates`], [`DiGraph::map_weights`]) share them
/// structurally: a topology epoch bump clones only the edge records.
/// Mutating the *structure* (`add_node` / `add_edge`) copies-on-write.
#[derive(Clone, Debug, Default)]
pub struct DiGraph {
    edges: Vec<EdgeRef>,
    out: Arc<Vec<Vec<EdgeId>>>,
    inn: Arc<Vec<Vec<EdgeId>>>,
}

impl DiGraph {
    /// Creates an empty graph with `n` nodes and no edges.
    #[must_use]
    pub fn new(n: usize) -> Self {
        DiGraph {
            edges: Vec::new(),
            out: Arc::new(vec![Vec::new(); n]),
            inn: Arc::new(vec![Vec::new(); n]),
        }
    }

    /// Builds a graph from `(src, dst, cost, delay)` tuples over `n` nodes.
    #[must_use]
    pub fn from_edges(n: usize, list: &[(u32, u32, Cost, Delay)]) -> Self {
        let mut g = DiGraph::new(n);
        for &(u, v, c, d) in list {
            g.add_edge(NodeId(u), NodeId(v), c, d);
        }
        g
    }

    /// Number of nodes.
    #[inline]
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.out.len()
    }

    /// Number of edges.
    #[inline]
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Appends a fresh node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        Arc::make_mut(&mut self.out).push(Vec::new());
        Arc::make_mut(&mut self.inn).push(Vec::new());
        NodeId((self.out.len() - 1) as u32)
    }

    /// Appends a directed edge `src → dst` and returns its id.
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, cost: Cost, delay: Delay) -> EdgeId {
        assert!(
            src.index() < self.node_count() && dst.index() < self.node_count(),
            "edge endpoint out of range"
        );
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(EdgeRef {
            src,
            dst,
            cost,
            delay,
        });
        Arc::make_mut(&mut self.out)[src.index()].push(id);
        Arc::make_mut(&mut self.inn)[dst.index()].push(id);
        id
    }

    /// Rewrites the weights of edge `e` in place, leaving the shared
    /// adjacency arrays untouched.
    ///
    /// Panics if `e` is out of range.
    pub fn set_edge_weights(&mut self, e: EdgeId, cost: Cost, delay: Delay) {
        let rec = &mut self.edges[e.index()];
        rec.cost = cost;
        rec.delay = delay;
    }

    /// A weight-patched copy sharing this graph's adjacency arrays.
    ///
    /// `changes` is a list of `(edge, new_cost, new_delay)` triples; the
    /// returned graph has identical structure (same node/edge ids, same
    /// iteration order) and its `out`/`inn` arrays are the *same* allocations
    /// as `self`'s (`Arc` clones) — this is the structural-sharing primitive
    /// behind topology epochs. Panics if any edge id is out of range.
    #[must_use]
    pub fn with_updates(&self, changes: &[(EdgeId, Cost, Delay)]) -> DiGraph {
        let mut g = self.clone();
        for &(e, c, d) in changes {
            g.set_edge_weights(e, c, d);
        }
        g
    }

    /// True when `self` and `other` share the same adjacency allocations
    /// (i.e. one was derived from the other by weight-only updates).
    #[must_use]
    pub fn shares_adjacency_with(&self, other: &DiGraph) -> bool {
        Arc::ptr_eq(&self.out, &other.out) && Arc::ptr_eq(&self.inn, &other.inn)
    }

    /// The stored record of edge `e`.
    #[inline]
    #[must_use]
    pub fn edge(&self, e: EdgeId) -> EdgeRef {
        self.edges[e.index()]
    }

    /// All edges in id order.
    #[inline]
    #[must_use]
    pub fn edges(&self) -> &[EdgeRef] {
        &self.edges
    }

    /// Outgoing edge ids of `v` (insertion order).
    #[inline]
    #[must_use]
    pub fn out_edges(&self, v: NodeId) -> &[EdgeId] {
        &self.out[v.index()]
    }

    /// Incoming edge ids of `v` (insertion order).
    #[inline]
    #[must_use]
    pub fn in_edges(&self, v: NodeId) -> &[EdgeId] {
        &self.inn[v.index()]
    }

    /// Iterator over `(EdgeId, EdgeRef)` pairs.
    pub fn edge_iter(&self) -> impl Iterator<Item = (EdgeId, EdgeRef)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, &e)| (EdgeId(i as u32), e))
    }

    /// Iterator over node ids.
    pub fn node_iter(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// Sum of all edge costs (`Σ c(e)` in the paper's complexity bounds).
    #[must_use]
    pub fn total_cost(&self) -> Cost {
        self.edges.iter().map(|e| e.cost).sum()
    }

    /// Sum of all edge delays (`Σ d(e)`).
    #[must_use]
    pub fn total_delay(&self) -> Delay {
        self.edges.iter().map(|e| e.delay).sum()
    }

    /// The graph with every edge reversed (attributes unchanged).
    #[must_use]
    pub fn reversed(&self) -> DiGraph {
        let mut g = DiGraph::new(self.node_count());
        for e in &self.edges {
            g.add_edge(e.dst, e.src, e.cost, e.delay);
        }
        g
    }

    /// A copy with weights transformed by `f(cost, delay) -> (cost, delay)`.
    ///
    /// The copy shares this graph's adjacency arrays (structure is unchanged,
    /// only the edge records are rewritten).
    #[must_use]
    pub fn map_weights(&self, mut f: impl FnMut(Cost, Delay) -> (Cost, Delay)) -> DiGraph {
        let mut g = self.clone();
        for e in &mut g.edges {
            let (c, d) = f(e.cost, e.delay);
            e.cost = c;
            e.delay = d;
        }
        g
    }

    /// Graphviz DOT rendering (costs/delays as `c,d` labels), for debugging
    /// and for the examples' output.
    #[must_use]
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut s = String::from("digraph G {\n");
        for (id, e) in self.edge_iter() {
            let _ = writeln!(
                s,
                "  {} -> {} [label=\"e{}: c={},d={}\"];",
                e.src.0, e.dst.0, id.0, e.cost, e.delay
            );
        }
        s.push_str("}\n");
        s
    }
}

// The adjacency arrays are fully determined by `edges` + the node count, so
// the wire form carries only `{n, edges}` and rebuilds `out`/`inn` on read.
// (Hand-written because the vendored serde has no `Arc` support.)
impl Serialize for DiGraph {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("n".to_string(), Content::Int(self.node_count() as i128)),
            ("edges".to_string(), self.edges.to_content()),
        ])
    }
}

impl Deserialize for DiGraph {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let n = usize::from_content(c.field("n")?)?;
        let edges = Vec::<EdgeRef>::from_content(c.field("edges")?)?;
        let mut g = DiGraph::new(n);
        for e in edges {
            if e.src.index() >= n || e.dst.index() >= n {
                return Err(DeError(format!(
                    "edge {} -> {} out of range for {n} nodes",
                    e.src.0, e.dst.0
                )));
            }
            g.add_edge(e.src, e.dst, e.cost, e.delay);
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3, plus a parallel 0 -> 1.
        DiGraph::from_edges(
            4,
            &[
                (0, 1, 1, 2),
                (1, 3, 3, 4),
                (0, 2, 5, 6),
                (2, 3, 7, 8),
                (0, 1, 9, 10),
            ],
        )
    }

    #[test]
    fn counts_and_lookup() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 5);
        let e = g.edge(EdgeId(1));
        assert_eq!(
            (e.src, e.dst, e.cost, e.delay),
            (NodeId(1), NodeId(3), 3, 4)
        );
    }

    #[test]
    fn adjacency_includes_parallel_edges() {
        let g = diamond();
        assert_eq!(g.out_edges(NodeId(0)), &[EdgeId(0), EdgeId(2), EdgeId(4)]);
        assert_eq!(g.in_edges(NodeId(1)), &[EdgeId(0), EdgeId(4)]);
        assert_eq!(g.in_edges(NodeId(3)), &[EdgeId(1), EdgeId(3)]);
        assert!(g.out_edges(NodeId(3)).is_empty());
    }

    #[test]
    fn add_node_grows() {
        let mut g = diamond();
        let v = g.add_node();
        assert_eq!(v, NodeId(4));
        assert_eq!(g.node_count(), 5);
        g.add_edge(v, NodeId(0), 1, 1);
        assert_eq!(g.out_edges(v), &[EdgeId(5)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_endpoint_panics() {
        let mut g = DiGraph::new(2);
        g.add_edge(NodeId(0), NodeId(2), 1, 1);
    }

    #[test]
    fn totals() {
        let g = diamond();
        assert_eq!(g.total_cost(), 25);
        assert_eq!(g.total_delay(), 30);
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let g = diamond().reversed();
        let e = g.edge(EdgeId(0));
        assert_eq!((e.src, e.dst), (NodeId(1), NodeId(0)));
        assert_eq!(g.out_edges(NodeId(3)), &[EdgeId(1), EdgeId(3)]);
    }

    #[test]
    fn map_weights_transforms() {
        let g = diamond().map_weights(|c, d| (c * 2, d + 1));
        assert_eq!(g.edge(EdgeId(0)).cost, 2);
        assert_eq!(g.edge(EdgeId(0)).delay, 3);
        assert_eq!(g.total_cost(), 50);
    }

    #[test]
    fn dot_contains_edges() {
        let dot = diamond().to_dot();
        assert!(dot.contains("0 -> 1"));
        assert!(dot.contains("c=7,d=8"));
    }

    #[test]
    fn weight_updates_share_adjacency() {
        let g = diamond();
        let h = g.with_updates(&[(EdgeId(0), 100, 200), (EdgeId(3), 1, 1)]);
        assert!(h.shares_adjacency_with(&g));
        assert_eq!(h.edge(EdgeId(0)).cost, 100);
        assert_eq!(h.edge(EdgeId(0)).delay, 200);
        assert_eq!(h.edge(EdgeId(3)).cost, 1);
        // untouched edges and all structure preserved
        assert_eq!(h.edge(EdgeId(1)), g.edge(EdgeId(1)));
        assert_eq!(h.out_edges(NodeId(0)), g.out_edges(NodeId(0)));
        // map_weights also shares
        let m = g.map_weights(|c, d| (c + 1, d));
        assert!(m.shares_adjacency_with(&g));
        assert_eq!(m.edge(EdgeId(2)).cost, 6);
    }

    #[test]
    fn structural_mutation_unshares() {
        let g = diamond();
        let mut h = g.clone();
        assert!(h.shares_adjacency_with(&g));
        h.add_edge(NodeId(3), NodeId(0), 1, 1);
        assert!(!h.shares_adjacency_with(&g));
        // original untouched
        assert!(g.out_edges(NodeId(3)).is_empty());
        assert_eq!(h.out_edges(NodeId(3)), &[EdgeId(5)]);
    }

    #[test]
    fn serde_roundtrip_rebuilds_adjacency() {
        let g = diamond();
        let json = serde_json::to_string(&g).unwrap();
        let h: DiGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(h.node_count(), g.node_count());
        assert_eq!(h.edges(), g.edges());
        assert_eq!(h.out_edges(NodeId(0)), g.out_edges(NodeId(0)));
        assert_eq!(h.in_edges(NodeId(3)), g.in_edges(NodeId(3)));
    }

    #[test]
    fn serde_rejects_out_of_range_edge() {
        let bad = r#"{"n":2,"edges":[{"src":0,"dst":5,"cost":1,"delay":1}]}"#;
        assert!(serde_json::from_str::<DiGraph>(bad).is_err());
    }

    #[test]
    fn self_loop_allowed() {
        let mut g = DiGraph::new(1);
        let e = g.add_edge(NodeId(0), NodeId(0), 1, 1);
        assert_eq!(g.out_edges(NodeId(0)), &[e]);
        assert_eq!(g.in_edges(NodeId(0)), &[e]);
    }
}
