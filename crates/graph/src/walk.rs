//! Closed-walk decomposition into simple cycles.
//!
//! Cycles extracted from level graphs (Section 4) or from negative-cycle
//! detectors may project to closed *walks* in the residual graph; Lemma 15
//! observes these decompose into sets of simple cycles. [`split_closed_walk`]
//! performs that decomposition.

use crate::digraph::{DiGraph, EdgeId};

/// Splits a closed walk (contiguous edge sequence returning to its start)
/// into edge-disjoint *simple* cycles (no repeated node within a cycle).
///
/// Panics if the input is not a contiguous closed walk.
#[must_use]
pub fn split_closed_walk(graph: &DiGraph, walk: &[EdgeId]) -> Vec<Vec<EdgeId>> {
    assert!(!walk.is_empty(), "closed walk must be nonempty");
    let start = graph.edge(walk[0]).src;
    let end = graph.edge(*walk.last().unwrap()).dst;
    assert_eq!(start, end, "walk is not closed");

    let mut cycles = Vec::new();
    // Stack of (node, incoming edge index within `stack_edges`).
    let mut stack_nodes: Vec<crate::digraph::NodeId> = vec![start];
    let mut stack_edges: Vec<EdgeId> = Vec::new();
    // Position of each node on the stack (graph-sized scratch).
    let mut pos = vec![usize::MAX; graph.node_count()];
    pos[start.index()] = 0;

    for &e in walk {
        let rec = graph.edge(e);
        assert_eq!(
            rec.src,
            *stack_nodes.last().unwrap(),
            "walk is not contiguous"
        );
        stack_edges.push(e);
        let v = rec.dst;
        if pos[v.index()] != usize::MAX {
            // Closing a simple cycle: pop everything since v's occurrence.
            let at = pos[v.index()];
            let cycle: Vec<EdgeId> = stack_edges.drain(at..).collect();
            for popped in stack_nodes.drain(at + 1..) {
                pos[popped.index()] = usize::MAX;
            }
            cycles.push(cycle);
        } else {
            pos[v.index()] = stack_nodes.len();
            stack_nodes.push(v);
        }
    }
    debug_assert_eq!(stack_nodes.len(), 1, "walk fully decomposed");
    debug_assert!(stack_edges.is_empty());
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DiGraph;

    #[test]
    fn single_simple_cycle() {
        let g = DiGraph::from_edges(3, &[(0, 1, 1, 1), (1, 2, 1, 1), (2, 0, 1, 1)]);
        let cycles = split_closed_walk(&g, &[EdgeId(0), EdgeId(1), EdgeId(2)]);
        assert_eq!(cycles, vec![vec![EdgeId(0), EdgeId(1), EdgeId(2)]]);
    }

    #[test]
    fn figure_eight_splits_in_two() {
        // Two triangles sharing node 0: 0-1-2-0 and 0-3-4-0.
        let g = DiGraph::from_edges(
            5,
            &[
                (0, 1, 1, 1),
                (1, 2, 1, 1),
                (2, 0, 1, 1),
                (0, 3, 1, 1),
                (3, 4, 1, 1),
                (4, 0, 1, 1),
            ],
        );
        let walk: Vec<EdgeId> = (0..6).map(EdgeId).collect();
        let cycles = split_closed_walk(&g, &walk);
        assert_eq!(cycles.len(), 2);
        assert_eq!(cycles[0], vec![EdgeId(0), EdgeId(1), EdgeId(2)]);
        assert_eq!(cycles[1], vec![EdgeId(3), EdgeId(4), EdgeId(5)]);
    }

    #[test]
    fn nested_cycle_peeled_first() {
        // Walk 0→1, 1→1 (self loop), 1→0: inner loop peeled, outer remains.
        let g = DiGraph::from_edges(2, &[(0, 1, 1, 1), (1, 1, 1, 1), (1, 0, 1, 1)]);
        let cycles = split_closed_walk(&g, &[EdgeId(0), EdgeId(1), EdgeId(2)]);
        assert_eq!(cycles.len(), 2);
        assert_eq!(cycles[0], vec![EdgeId(1)]);
        assert_eq!(cycles[1], vec![EdgeId(0), EdgeId(2)]);
    }

    #[test]
    #[should_panic(expected = "not closed")]
    fn open_walk_panics() {
        let g = DiGraph::from_edges(3, &[(0, 1, 1, 1), (1, 2, 1, 1)]);
        let _ = split_closed_walk(&g, &[EdgeId(0), EdgeId(1)]);
    }

    #[test]
    fn cycles_partition_walk_edges() {
        // Random-ish longer walk revisiting nodes: 0-1-2-0-2... build explicit.
        let g = DiGraph::from_edges(
            3,
            &[
                (0, 1, 1, 1), // e0
                (1, 2, 1, 1), // e1
                (2, 0, 1, 1), // e2
                (0, 2, 1, 1), // e3
                (2, 0, 2, 2), // e4 (parallel to e2)
            ],
        );
        let walk = vec![EdgeId(0), EdgeId(1), EdgeId(2), EdgeId(3), EdgeId(4)];
        let cycles = split_closed_walk(&g, &walk);
        let total: usize = cycles.iter().map(Vec::len).sum();
        assert_eq!(total, walk.len());
        // Every piece is itself a closed contiguous sequence.
        for c in &cycles {
            let first = g.edge(c[0]).src;
            let mut cur = first;
            for &e in c {
                assert_eq!(g.edge(e).src, cur);
                cur = g.edge(e).dst;
            }
            assert_eq!(cur, first);
        }
    }
}
