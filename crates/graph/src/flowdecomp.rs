//! Flow decomposition: an [`EdgeSet`] that is a unit `st`-flow of value `k`
//! decomposes into `k` edge-disjoint simple `st`-paths plus a set of simple
//! cycles (the classical result behind Propositions 7/8).

use crate::digraph::{DiGraph, EdgeId, NodeId};
use crate::edgeset::EdgeSet;
use crate::path::{Cycle, Path};
use std::fmt;

/// Result of decomposing a flow edge set.
#[derive(Clone, Debug)]
pub struct Decomposition {
    /// `k` edge-disjoint simple `st`-paths.
    pub paths: Vec<Path>,
    /// Remaining flow mass: edge-disjoint simple cycles.
    pub cycles: Vec<Cycle>,
}

impl Decomposition {
    /// Total cost over paths only.
    #[must_use]
    pub fn path_cost(&self) -> i64 {
        self.paths.iter().map(Path::cost).sum()
    }

    /// Total delay over paths only.
    #[must_use]
    pub fn path_delay(&self) -> i64 {
        self.paths.iter().map(Path::delay).sum()
    }
}

/// Why a set failed to decompose.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowError {
    /// Some node's excess does not match a `k`-flow from `s` to `t`.
    NotAFlow,
    /// Walk extraction got stuck (impossible for valid flows; indicates
    /// corrupted inputs).
    Stuck,
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::NotAFlow => write!(f, "edge set is not an st-flow of value k"),
            FlowError::Stuck => write!(f, "flow walk extraction stuck"),
        }
    }
}

impl std::error::Error for FlowError {}

/// Decomposes `set` (a `k`-unit `st`-flow in `graph`) into `k` simple paths
/// and simple cycles. The returned edge lists partition `set` exactly.
pub fn decompose(
    graph: &DiGraph,
    set: &EdgeSet,
    s: NodeId,
    t: NodeId,
    k: usize,
) -> Result<Decomposition, FlowError> {
    if !set.is_k_flow(graph, s, t, k) {
        return Err(FlowError::NotAFlow);
    }
    // Per-node stack of unused member out-edges.
    let mut avail: Vec<Vec<EdgeId>> = vec![Vec::new(); graph.node_count()];
    for e in set.iter() {
        avail[graph.edge(e).src.index()].push(e);
    }

    let mut paths = Vec::with_capacity(k);
    let mut cycles = Vec::new();
    for _ in 0..k {
        let walk = extract_walk(graph, &mut avail, s, t)?;
        let (path_edges, loop_cycles) = simplify_walk(graph, &walk);
        for c in loop_cycles {
            cycles.push(Cycle::new(graph, c).expect("peeled loop is a cycle"));
        }
        paths.push(Path::new(graph, path_edges).expect("simplified walk is a path"));
    }

    // Remaining edges form circulations; peel simple cycles.
    for v in graph.node_iter() {
        while !avail[v.index()].is_empty() {
            let walk = extract_walk(graph, &mut avail, v, v)?;
            for c in crate::walk::split_closed_walk(graph, &walk) {
                cycles.push(Cycle::new(graph, c).expect("split produced a cycle"));
            }
        }
    }
    Ok(Decomposition { paths, cycles })
}

/// Follows unused member edges from `from` until reaching `to`, consuming
/// them. For `from == to` this returns the first closed walk back to `from`.
/// Conservation guarantees the walk can only terminate at `to`.
fn extract_walk(
    graph: &DiGraph,
    avail: &mut [Vec<EdgeId>],
    from: NodeId,
    to: NodeId,
) -> Result<Vec<EdgeId>, FlowError> {
    let mut walk = Vec::new();
    let mut cur = from;
    loop {
        let Some(e) = avail[cur.index()].pop() else {
            return Err(FlowError::Stuck);
        };
        walk.push(e);
        cur = graph.edge(e).dst;
        if cur == to {
            return Ok(walk);
        }
    }
}

/// Splits an `s→t` walk into a *simple* path plus the simple cycles that
/// were embedded in it (loops are peeled where a node repeats).
fn simplify_walk(graph: &DiGraph, walk: &[EdgeId]) -> (Vec<EdgeId>, Vec<Vec<EdgeId>>) {
    let start = graph.edge(walk[0]).src;
    let mut cycles = Vec::new();
    let mut stack_nodes: Vec<NodeId> = vec![start];
    let mut stack_edges: Vec<EdgeId> = Vec::new();
    let mut pos = vec![usize::MAX; graph.node_count()];
    pos[start.index()] = 0;

    for &e in walk {
        let rec = graph.edge(e);
        debug_assert_eq!(rec.src, *stack_nodes.last().unwrap(), "walk not contiguous");
        stack_edges.push(e);
        let v = rec.dst;
        if pos[v.index()] != usize::MAX {
            let at = pos[v.index()];
            let cycle: Vec<EdgeId> = stack_edges.drain(at..).collect();
            for popped in stack_nodes.drain(at + 1..) {
                pos[popped.index()] = usize::MAX;
            }
            cycles.push(cycle);
        } else {
            pos[v.index()] = stack_nodes.len();
            stack_nodes.push(v);
        }
    }
    (stack_edges, cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn two_disjoint_paths() {
        let g = DiGraph::from_edges(4, &[(0, 1, 1, 1), (1, 3, 1, 1), (0, 2, 2, 2), (2, 3, 2, 2)]);
        let set = EdgeSet::from_edges(4, &[EdgeId(0), EdgeId(1), EdgeId(2), EdgeId(3)]);
        let d = decompose(&g, &set, NodeId(0), NodeId(3), 2).unwrap();
        assert_eq!(d.paths.len(), 2);
        assert!(d.cycles.is_empty());
        assert_eq!(d.path_cost(), 6);
        assert_eq!(d.path_delay(), 6);
        for p in &d.paths {
            assert!(p.is_simple(&g));
            assert_eq!(p.source(), NodeId(0));
            assert_eq!(p.target(), NodeId(3));
        }
    }

    #[test]
    fn path_plus_disjoint_cycle() {
        // Path 0→3 plus a circulation 1→2→1 not touching it.
        let g = DiGraph::from_edges(4, &[(0, 3, 1, 1), (1, 2, 1, 1), (2, 1, 1, 1)]);
        let set = EdgeSet::from_edges(3, &[EdgeId(0), EdgeId(1), EdgeId(2)]);
        let d = decompose(&g, &set, NodeId(0), NodeId(3), 1).unwrap();
        assert_eq!(d.paths.len(), 1);
        assert_eq!(d.cycles.len(), 1);
        assert_eq!(d.cycles[0].len(), 2);
    }

    #[test]
    fn walk_with_embedded_loop_is_simplified() {
        // Only flow: 0→1→2→1→3 ... realized as edges (0,1),(1,2),(2,1),(1,3).
        let g = DiGraph::from_edges(4, &[(0, 1, 1, 1), (1, 2, 1, 1), (2, 1, 1, 1), (1, 3, 1, 1)]);
        let set = EdgeSet::from_edges(4, &[EdgeId(0), EdgeId(1), EdgeId(2), EdgeId(3)]);
        let d = decompose(&g, &set, NodeId(0), NodeId(3), 1).unwrap();
        assert_eq!(d.paths.len(), 1);
        assert!(d.paths[0].is_simple(&g));
        // The 1→2→1 loop ends up as a cycle (either peeled from the walk or
        // extracted as leftover circulation).
        assert_eq!(d.cycles.len(), 1);
        let total_edges = d.paths[0].len() + d.cycles.iter().map(Cycle::len).sum::<usize>();
        assert_eq!(total_edges, 4);
    }

    #[test]
    fn rejects_non_flows() {
        let g = DiGraph::from_edges(3, &[(0, 1, 1, 1), (1, 2, 1, 1)]);
        let set = EdgeSet::from_edges(2, &[EdgeId(0)]);
        assert_eq!(
            decompose(&g, &set, NodeId(0), NodeId(2), 1).unwrap_err(),
            FlowError::NotAFlow
        );
    }

    #[test]
    fn parallel_edges_decompose() {
        let g = DiGraph::from_edges(2, &[(0, 1, 1, 1), (0, 1, 2, 2)]);
        let set = EdgeSet::from_edges(2, &[EdgeId(0), EdgeId(1)]);
        let d = decompose(&g, &set, NodeId(0), NodeId(1), 2).unwrap();
        assert_eq!(d.paths.len(), 2);
        assert_eq!(d.path_cost(), 3);
    }

    /// Builds a random layered graph, installs k disjoint paths by
    /// construction, and checks decomposition recovers a valid partition.
    fn layered_k_flow(k: usize, layers: usize) -> (DiGraph, EdgeSet, NodeId, NodeId) {
        // Nodes: s=0, t=1, then layers×k inner nodes.
        let n = 2 + layers * k;
        let mut g = DiGraph::new(n);
        let id = |l: usize, j: usize| NodeId((2 + l * k + j) as u32);
        let mut member = Vec::new();
        for j in 0..k {
            member.push(g.add_edge(NodeId(0), id(0, j), 1, 1));
            for l in 0..layers - 1 {
                member.push(g.add_edge(id(l, j), id(l + 1, j), 1, 1));
            }
            member.push(g.add_edge(id(layers - 1, j), NodeId(1), 1, 1));
        }
        // Distracting extra edges not in the set.
        for l in 0..layers - 1 {
            for j in 0..k {
                g.add_edge(id(l, j), id(l + 1, (j + 1) % k), 9, 9);
            }
        }
        let set = EdgeSet::from_edges(g.edge_count(), &member);
        (g, set, NodeId(0), NodeId(1))
    }

    proptest! {
        #[test]
        fn prop_layered_flows_decompose(k in 1usize..5, layers in 1usize..5) {
            let (g, set, s, t) = layered_k_flow(k, layers);
            let d = decompose(&g, &set, s, t, k).unwrap();
            prop_assert_eq!(d.paths.len(), k);
            prop_assert!(d.cycles.is_empty());
            // Edge partition is exact.
            let mut got: Vec<EdgeId> = d.paths.iter().flat_map(|p| p.edges().to_vec()).collect();
            got.sort_unstable();
            let mut want: Vec<EdgeId> = set.iter().collect();
            want.sort_unstable();
            prop_assert_eq!(got, want);
            // Paths are edge-disjoint and simple s→t paths.
            for p in &d.paths {
                prop_assert!(p.is_simple(&g));
                prop_assert_eq!(p.source(), s);
                prop_assert_eq!(p.target(), t);
            }
        }
    }
}
