//! Directed multigraph substrate for the `krsp` suite.
//!
//! The paper works with digraphs carrying two nonnegative integral edge
//! attributes (cost `c`, delay `d`), with *residual* graphs (Definition 6)
//! that reverse solution edges and negate both attributes — producing
//! multigraphs with negative weights — and with the symmetric-difference
//! operation `⊕` (Section 2.1) used by cycle cancellation.
//!
//! Everything here is built from scratch (no external graph crate):
//!
//! * [`DiGraph`] — compact adjacency-list digraph with parallel-edge support.
//! * [`Path`] / [`Cycle`] — validated edge sequences with cost/delay sums.
//! * [`EdgeSet`] — dense edge membership sets representing solutions (unit
//!   `st`-flows of value `k`).
//! * [`residual::ResidualGraph`] — Definition 6, plus `⊕` application.
//! * [`decompose`] — flow decomposition of an [`EdgeSet`] into `k` disjoint
//!   `st`-paths plus cycles (Propositions 7/8 machinery).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod digraph;
pub mod edgeset;
pub mod flowdecomp;
pub mod path;
pub mod residual;
pub mod scc;
pub mod walk;

pub use digraph::{DiGraph, EdgeId, EdgeRef, NodeId};
pub use edgeset::EdgeSet;
pub use flowdecomp::{decompose, Decomposition, FlowError};
pub use path::{Cycle, Path};
pub use residual::{ResEdge, ResidualGraph};
pub use scc::{tarjan_scc, SccPartition};
pub use walk::split_closed_walk;

/// Edge cost type. Costs in instances are nonnegative; residual graphs and
/// intermediate sums may be negative, hence signed.
pub type Cost = i64;

/// Edge delay type (same signedness rationale as [`Cost`]).
pub type Delay = i64;
