//! Residual graphs (Definition 6) and the `⊕` cycle-cancellation step.
//!
//! Given the current solution `P_1..P_k` (as an [`EdgeSet`] `S`), the
//! residual graph `G̃ = G_res(P_1..P_k)` contains
//!
//! * a **forward** copy of every edge `e ∉ S` with its original `(c, d)`, and
//! * a **reverse** copy `e'(v,u)` of every edge `e(u,v) ∈ S` with *negated*
//!   cost and delay: `c(e') = −c(e)`, `d(e') = −d(e)`.
//!
//! `G̃` may be a multigraph (footnote 1 of the paper). Cancelling a residual
//! cycle `O` replaces `S` by `S ⊕ O`: forward members of `O` are added to the
//! solution, reverse members remove their originals.

use crate::digraph::{DiGraph, EdgeId, NodeId};
use crate::edgeset::EdgeSet;
use serde::{Deserialize, Serialize};

/// Origin of a residual edge in the base graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResEdge {
    /// Original edge, not in the solution; traversing it adds the edge.
    Forward(EdgeId),
    /// Reversed solution edge; traversing it removes the original edge.
    Reverse(EdgeId),
}

impl ResEdge {
    /// The underlying base-graph edge id.
    #[must_use]
    pub fn base(self) -> EdgeId {
        match self {
            ResEdge::Forward(e) | ResEdge::Reverse(e) => e,
        }
    }

    /// True for [`ResEdge::Reverse`].
    #[must_use]
    pub fn is_reverse(self) -> bool {
        matches!(self, ResEdge::Reverse(_))
    }
}

/// The residual graph of Definition 6.
///
/// Internally materialized as a fresh [`DiGraph`] (so every algorithm in the
/// suite runs on it unchanged) plus a map from residual edge ids back to
/// their [`ResEdge`] origin.
#[derive(Clone, Debug)]
pub struct ResidualGraph {
    graph: DiGraph,
    origin: Vec<ResEdge>,
}

impl ResidualGraph {
    /// Builds `G_res(solution)` from the base graph and the solution set.
    #[must_use]
    pub fn build(base: &DiGraph, solution: &EdgeSet) -> Self {
        let mut graph = DiGraph::new(base.node_count());
        let mut origin = Vec::with_capacity(base.edge_count());
        for (id, e) in base.edge_iter() {
            if solution.contains(id) {
                graph.add_edge(e.dst, e.src, -e.cost, -e.delay);
                origin.push(ResEdge::Reverse(id));
            } else {
                graph.add_edge(e.src, e.dst, e.cost, e.delay);
                origin.push(ResEdge::Forward(id));
            }
        }
        ResidualGraph { graph, origin }
    }

    /// The materialized residual digraph (negative weights possible).
    #[must_use]
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// Origin of residual edge `e`.
    #[must_use]
    pub fn origin(&self, e: EdgeId) -> ResEdge {
        self.origin[e.index()]
    }

    /// Applies `solution ← solution ⊕ O` for a residual cycle (or a set of
    /// edge-disjoint residual cycles given as one edge list).
    ///
    /// Panics (debug) if a forward edge is already in the solution or a
    /// reverse edge is missing — which would indicate the cycle is stale.
    pub fn apply(&self, solution: &mut EdgeSet, cycle_edges: &[EdgeId]) {
        for &re in cycle_edges {
            match self.origin(re) {
                ResEdge::Forward(e) => {
                    let fresh = solution.insert(e);
                    debug_assert!(fresh, "forward residual edge already in solution");
                }
                ResEdge::Reverse(e) => {
                    let was = solution.remove(e);
                    debug_assert!(was, "reverse residual edge not in solution");
                }
            }
        }
    }

    /// Cost of a residual edge list (signed).
    #[must_use]
    pub fn cost_of(&self, edges: &[EdgeId]) -> i64 {
        edges.iter().map(|&e| self.graph.edge(e).cost).sum()
    }

    /// Delay of a residual edge list (signed).
    #[must_use]
    pub fn delay_of(&self, edges: &[EdgeId]) -> i64 {
        edges.iter().map(|&e| self.graph.edge(e).delay).sum()
    }

    /// Checks that an edge list is a (not necessarily simple) closed walk in
    /// the residual graph with every edge used at most once.
    #[must_use]
    pub fn is_valid_cycle_set(&self, edges: &[EdgeId]) -> bool {
        if edges.is_empty() {
            return false;
        }
        let mut seen = vec![false; self.graph.edge_count()];
        let mut excess = std::collections::HashMap::<NodeId, i64>::new();
        for &e in edges {
            if seen[e.index()] {
                return false;
            }
            seen[e.index()] = true;
            let r = self.graph.edge(e);
            *excess.entry(r.src).or_insert(0) += 1;
            *excess.entry(r.dst).or_insert(0) -= 1;
        }
        excess.values().all(|&x| x == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::NodeId;

    /// 0→1→3 (in solution), 0→2→3 alternative, 2→1 chord.
    fn setup() -> (DiGraph, EdgeSet) {
        let g = DiGraph::from_edges(
            4,
            &[
                (0, 1, 5, 9), // e0 in solution
                (1, 3, 5, 9), // e1 in solution
                (0, 2, 1, 1), // e2
                (2, 3, 1, 1), // e3
                (2, 1, 1, 1), // e4
            ],
        );
        let s = EdgeSet::from_edges(g.edge_count(), &[EdgeId(0), EdgeId(1)]);
        (g, s)
    }

    #[test]
    fn residual_negates_solution_edges() {
        let (g, s) = setup();
        let res = ResidualGraph::build(&g, &s);
        let rg = res.graph();
        assert_eq!(rg.edge_count(), 5);
        // e0 reversed: 1→0 with negated weights.
        let r0 = rg.edge(EdgeId(0));
        assert_eq!(
            (r0.src, r0.dst, r0.cost, r0.delay),
            (NodeId(1), NodeId(0), -5, -9)
        );
        assert_eq!(res.origin(EdgeId(0)), ResEdge::Reverse(EdgeId(0)));
        // e2 forward unchanged.
        let r2 = rg.edge(EdgeId(2));
        assert_eq!(
            (r2.src, r2.dst, r2.cost, r2.delay),
            (NodeId(0), NodeId(2), 1, 1)
        );
        assert_eq!(res.origin(EdgeId(2)), ResEdge::Forward(EdgeId(2)));
    }

    #[test]
    fn apply_cycle_swaps_path() {
        let (g, mut s) = setup();
        let res = ResidualGraph::build(&g, &s);
        // Residual cycle: 0→2 (e2), 2→1 (e4), 1→0 (reverse e0).
        let cyc = vec![EdgeId(2), EdgeId(4), EdgeId(0)];
        assert!(res.is_valid_cycle_set(&cyc));
        assert_eq!(res.cost_of(&cyc), 1 + 1 - 5);
        assert_eq!(res.delay_of(&cyc), 1 + 1 - 9);
        res.apply(&mut s, &cyc);
        // Now the solution is 0→2→1→3.
        let members: Vec<_> = s.iter().collect();
        assert_eq!(members, vec![EdgeId(1), EdgeId(2), EdgeId(4)]);
        assert!(s.is_k_flow(&g, NodeId(0), NodeId(3), 1));
    }

    #[test]
    fn invalid_cycle_sets_rejected() {
        let (g, s) = setup();
        let res = ResidualGraph::build(&g, &s);
        assert!(!res.is_valid_cycle_set(&[])); // empty
        assert!(!res.is_valid_cycle_set(&[EdgeId(2)])); // open
        assert!(!res.is_valid_cycle_set(&[EdgeId(2), EdgeId(2)])); // repeated edge
    }

    #[test]
    fn resedge_base_and_direction() {
        assert_eq!(ResEdge::Forward(EdgeId(3)).base(), EdgeId(3));
        assert_eq!(ResEdge::Reverse(EdgeId(3)).base(), EdgeId(3));
        assert!(ResEdge::Reverse(EdgeId(0)).is_reverse());
        assert!(!ResEdge::Forward(EdgeId(0)).is_reverse());
    }
}
