//! Cost/delay weight regimes.
//!
//! QoS-routing evaluations classically distinguish how cost and delay
//! co-vary: independent weights are easy; *anticorrelated* weights (fast
//! links are expensive) concentrate the hard trade-offs and are the
//! adversarial regime for RSP-style algorithms.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Joint distribution of `(cost, delay)` per edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Regime {
    /// Independent uniform draws.
    Uniform,
    /// `delay ≈ cost + noise` — cheap links are also fast.
    Correlated,
    /// `delay ≈ max − cost + noise` — cheap links are slow (adversarial).
    Anticorrelated,
}

/// Weight ranges for the regimes.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct WeightParams {
    /// Inclusive maximum weight (minimum is 1).
    pub max: i64,
    /// Half-width of the additive noise for the (anti)correlated regimes.
    pub noise: i64,
}

impl Default for WeightParams {
    fn default() -> Self {
        WeightParams { max: 20, noise: 3 }
    }
}

impl Regime {
    /// Samples one `(cost, delay)` pair.
    pub fn sample(self, params: WeightParams, rng: &mut impl Rng) -> (i64, i64) {
        let max = params.max.max(1);
        let cost = rng.gen_range(1..=max);
        let jitter = |rng: &mut dyn rand::RngCore| -> i64 {
            if params.noise == 0 {
                0
            } else {
                rand::Rng::gen_range(rng, -params.noise..=params.noise)
            }
        };
        let delay = match self {
            Regime::Uniform => rng.gen_range(1..=max),
            Regime::Correlated => (cost + jitter(rng)).clamp(1, max),
            Regime::Anticorrelated => (max + 1 - cost + jitter(rng)).clamp(1, max),
        };
        (cost, delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;

    fn corr(regime: Regime) -> f64 {
        let mut rng = ChaCha20Rng::seed_from_u64(42);
        let p = WeightParams { max: 50, noise: 2 };
        let samples: Vec<(f64, f64)> = (0..4000)
            .map(|_| {
                let (c, d) = regime.sample(p, &mut rng);
                (c as f64, d as f64)
            })
            .collect();
        let n = samples.len() as f64;
        let (mc, md) = (
            samples.iter().map(|s| s.0).sum::<f64>() / n,
            samples.iter().map(|s| s.1).sum::<f64>() / n,
        );
        let cov = samples.iter().map(|s| (s.0 - mc) * (s.1 - md)).sum::<f64>() / n;
        let (vc, vd) = (
            samples.iter().map(|s| (s.0 - mc).powi(2)).sum::<f64>() / n,
            samples.iter().map(|s| (s.1 - md).powi(2)).sum::<f64>() / n,
        );
        cov / (vc.sqrt() * vd.sqrt())
    }

    #[test]
    fn regimes_have_expected_correlation_signs() {
        assert!(corr(Regime::Uniform).abs() < 0.1);
        assert!(corr(Regime::Correlated) > 0.9);
        assert!(corr(Regime::Anticorrelated) < -0.9);
    }

    #[test]
    fn weights_stay_in_range() {
        let mut rng = ChaCha20Rng::seed_from_u64(1);
        let p = WeightParams { max: 10, noise: 5 };
        for regime in [Regime::Uniform, Regime::Correlated, Regime::Anticorrelated] {
            for _ in 0..500 {
                let (c, d) = regime.sample(p, &mut rng);
                assert!((1..=10).contains(&c));
                assert!((1..=10).contains(&d));
            }
        }
    }
}
