//! Workload generators and instance I/O for the `krsp` suite.
//!
//! The paper has no experimental section, so the evaluation workloads are
//! designed here (see DESIGN.md §6): five topology families crossed with
//! three cost/delay regimes, all seeded and deterministic, plus the
//! parametric hard family of the paper's Figure 1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod evolve;
pub mod families;
pub mod fig1;
pub mod hardness;
pub mod io;
pub mod regimes;

pub use evolve::{apply as apply_changes, cost_ramp, flap_storm, link_flap, WeightChange};
pub use families::{geometric, gnm, grid, layered, scale_free, Family};
pub use fig1::fig1_instance;
pub use hardness::{has_even_split, partition_chain};
pub use io::{read_instance, write_instance};
pub use regimes::{Regime, WeightParams};

use krsp::Instance;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;

/// A fully specified workload point: topology family × size × regime ×
/// seed, plus kRSP parameters.
#[derive(Clone, Copy, Debug)]
pub struct Workload {
    /// Topology family.
    pub family: Family,
    /// Target node count.
    pub n: usize,
    /// Target edge count (families may round).
    pub m: usize,
    /// Cost/delay regime.
    pub regime: Regime,
    /// Number of disjoint paths.
    pub k: usize,
    /// Delay-budget tightness ∈ (0, 1]: `D = D_min + t·(D_relax − D_min)`
    /// where `D_min` is the minimum achievable total delay and `D_relax`
    /// the delay of the min-cost solution.
    pub tightness: f64,
    /// PRNG seed.
    pub seed: u64,
}

impl Workload {
    /// Instantiates the workload deterministically; returns `None` when the
    /// sampled topology cannot host `k` disjoint paths (caller retries with
    /// another seed) or the tightness interval is degenerate.
    #[must_use]
    pub fn instantiate(&self) -> Option<Instance> {
        let mut rng = ChaCha20Rng::seed_from_u64(self.seed);
        let graph = self.family.sample(self.n, self.m, self.regime, &mut rng);
        // Families may round the node count (grids, layers); terminals are
        // defined on the actual graph.
        let (s, t) = self.family.terminals(graph.node_count());
        // Budget selection needs the two delay extremes.
        let probe = Instance::new(graph, s, t, self.k, i64::MAX / 4).ok()?;
        let dmin = krsp::baselines::min_delay(&probe)?.delay;
        let drelax = krsp::baselines::min_sum(&probe)?.delay;
        let hi = drelax.max(dmin);
        let d = dmin + ((hi - dmin) as f64 * self.tightness).round() as i64;
        Instance::new(probe.graph, s, t, self.k, d.max(dmin)).ok()
    }
}

/// Convenience: sample until a feasible instance appears (bounded retries).
#[must_use]
pub fn instantiate_with_retries(mut w: Workload, max_retries: u64) -> Option<Instance> {
    for bump in 0..max_retries {
        w.seed = w.seed.wrapping_add(bump);
        if let Some(inst) = w.instantiate() {
            return Some(inst);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic() {
        let w = Workload {
            family: Family::Gnm,
            n: 24,
            m: 96,
            regime: Regime::Anticorrelated,
            k: 2,
            tightness: 0.5,
            seed: 7,
        };
        let a = w.instantiate();
        let b = w.instantiate();
        match (a, b) {
            (Some(x), Some(y)) => {
                assert_eq!(x.delay_bound, y.delay_bound);
                assert_eq!(x.graph.edge_count(), y.graph.edge_count());
                assert_eq!(x.graph.edges(), y.graph.edges());
            }
            (None, None) => {}
            _ => panic!("nondeterministic instantiation"),
        }
    }

    #[test]
    fn retries_find_a_feasible_instance() {
        let w = Workload {
            family: Family::Gnm,
            n: 20,
            m: 80,
            regime: Regime::Uniform,
            k: 2,
            tightness: 0.4,
            seed: 1,
        };
        let inst = instantiate_with_retries(w, 20).expect("some seed works");
        assert!(inst.is_structurally_feasible());
        // Budget is sandwiched between the extremes by construction.
        let dmin = krsp::baselines::min_delay(&inst).unwrap().delay;
        assert!(inst.delay_bound >= dmin);
    }
}
