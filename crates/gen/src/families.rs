//! Topology families (DESIGN.md §6).

use crate::regimes::{Regime, WeightParams};
use krsp_graph::{DiGraph, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The topology families of the evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Family {
    /// Uniform random simple digraph with `m` edges.
    Gnm,
    /// Directed grid with forward shortcuts (mesh/NoC fabric).
    Grid,
    /// Layered DAG with dense inter-layer wiring (SDN fabric).
    Layered,
    /// Random geometric digraph; delay tracks Euclidean distance.
    Geometric,
    /// Scale-free DAG via preferential attachment (Internet-AS-like skew).
    ScaleFree,
}

impl Family {
    /// Canonical source/sink for an `n`-node instance of this family.
    #[must_use]
    pub fn terminals(&self, n: usize) -> (NodeId, NodeId) {
        (NodeId(0), NodeId((n - 1) as u32))
    }

    /// Samples a digraph with roughly `n` nodes / `m` edges.
    pub fn sample(&self, n: usize, m: usize, regime: Regime, rng: &mut impl Rng) -> DiGraph {
        match self {
            Family::Gnm => gnm(n, m, regime, WeightParams::default(), rng),
            Family::Grid => grid(isqrt(n), regime, WeightParams::default(), rng),
            Family::Layered => {
                let width = (n / 6).clamp(2, 8);
                let depth = (n / width).max(2);
                layered(depth, width, regime, WeightParams::default(), rng)
            }
            Family::Geometric => geometric(n, m, WeightParams::default(), rng),
            Family::ScaleFree => {
                let deg = (m / n.max(1)).clamp(2, 6);
                scale_free(n, deg, regime, WeightParams::default(), rng)
            }
        }
    }
}

fn isqrt(n: usize) -> usize {
    ((n as f64).sqrt().round() as usize).max(2)
}

/// Uniform random simple digraph: `n` nodes, up to `m` distinct directed
/// edges (no self-loops), weights from `regime`. A spine path `0→…→n−1`
/// through a random permutation is added first so the terminals are always
/// connected.
pub fn gnm(
    n: usize,
    m: usize,
    regime: Regime,
    params: WeightParams,
    rng: &mut impl Rng,
) -> DiGraph {
    assert!(n >= 2);
    let mut g = DiGraph::new(n);
    let mut present = std::collections::HashSet::<(u32, u32)>::new();
    // Spine through a shuffled middle section.
    let mut mid: Vec<u32> = (1..(n as u32 - 1)).collect();
    mid.shuffle(rng);
    let spine: Vec<u32> = std::iter::once(0)
        .chain(mid)
        .chain(std::iter::once(n as u32 - 1))
        .collect();
    for w in spine.windows(2) {
        let (c, d) = regime.sample(params, rng);
        g.add_edge(NodeId(w[0]), NodeId(w[1]), c, d);
        present.insert((w[0], w[1]));
    }
    let mut attempts = 0;
    while g.edge_count() < m && attempts < 20 * m {
        attempts += 1;
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u == v || present.contains(&(u, v)) {
            continue;
        }
        let (c, d) = regime.sample(params, rng);
        g.add_edge(NodeId(u), NodeId(v), c, d);
        present.insert((u, v));
    }
    g
}

/// `side × side` directed grid: east/south edges everywhere plus sparse
/// diagonal shortcuts; source top-left, sink bottom-right.
pub fn grid(side: usize, regime: Regime, params: WeightParams, rng: &mut impl Rng) -> DiGraph {
    assert!(side >= 2);
    let n = side * side;
    let mut g = DiGraph::new(n);
    let id = |r: usize, c: usize| NodeId((r * side + c) as u32);
    for r in 0..side {
        for c in 0..side {
            if c + 1 < side {
                let (w, d) = regime.sample(params, rng);
                g.add_edge(id(r, c), id(r, c + 1), w, d);
            }
            if r + 1 < side {
                let (w, d) = regime.sample(params, rng);
                g.add_edge(id(r, c), id(r + 1, c), w, d);
            }
            if r + 1 < side && c + 1 < side && rng.gen_bool(0.3) {
                let (w, d) = regime.sample(params, rng);
                g.add_edge(id(r, c), id(r + 1, c + 1), w, d);
            }
        }
    }
    g
}

/// Layered fabric: `depth` layers of `width` nodes, source fanning into the
/// first layer, all-to-all between consecutive layers, last layer fanning
/// into the sink. Plus sparse skip edges.
pub fn layered(
    depth: usize,
    width: usize,
    regime: Regime,
    params: WeightParams,
    rng: &mut impl Rng,
) -> DiGraph {
    assert!(depth >= 1 && width >= 1);
    let n = depth * width + 2;
    let mut g = DiGraph::new(n);
    let s = NodeId(0);
    let t = NodeId((n - 1) as u32);
    let id = |l: usize, j: usize| NodeId((1 + l * width + j) as u32);
    for j in 0..width {
        let (c, d) = regime.sample(params, rng);
        g.add_edge(s, id(0, j), c, d);
        let (c, d) = regime.sample(params, rng);
        g.add_edge(id(depth - 1, j), t, c, d);
    }
    for l in 0..depth - 1 {
        for a in 0..width {
            for b in 0..width {
                let (c, d) = regime.sample(params, rng);
                g.add_edge(id(l, a), id(l + 1, b), c, d);
            }
        }
    }
    // Sparse skip edges two layers ahead.
    for l in 0..depth.saturating_sub(2) {
        for a in 0..width {
            if rng.gen_bool(0.2) {
                let b = rng.gen_range(0..width);
                let (c, d) = regime.sample(params, rng);
                g.add_edge(id(l, a), id(l + 2, b), c, d);
            }
        }
    }
    // NOTE: terminals for this family are 0 and n−1 as usual.
    g
}

/// Scale-free digraph via preferential attachment (Barabási–Albert
/// flavour): node `v` attaches `deg` out-edges to earlier nodes with
/// probability proportional to their current degree, then the edges are
/// doubled in the forward direction `small → large` index so `0 → n−1`
/// routes exist. Internet-AS-like degree skew.
pub fn scale_free(
    n: usize,
    deg: usize,
    regime: Regime,
    params: WeightParams,
    rng: &mut impl Rng,
) -> DiGraph {
    assert!(n >= 2 && deg >= 1);
    let mut g = DiGraph::new(n);
    // Repeated-endpoint list ("urn") for preferential attachment.
    let mut urn: Vec<u32> = vec![0, 1];
    let (c, d) = regime.sample(params, rng);
    g.add_edge(NodeId(0), NodeId(1), c, d);
    for v in 2..n as u32 {
        let mut chosen = std::collections::HashSet::new();
        for _ in 0..deg.min(v as usize) {
            let pick = urn[rng.gen_range(0..urn.len())];
            if pick != v && chosen.insert(pick) {
                // Forward edge from the smaller index to the larger keeps
                // the graph s→t routable for s=0, t=n−1.
                let (a, b) = if pick < v { (pick, v) } else { (v, pick) };
                let (c, d) = regime.sample(params, rng);
                g.add_edge(NodeId(a), NodeId(b), c, d);
                urn.push(pick);
            }
        }
        urn.push(v);
    }
    g
}

/// Random geometric digraph on the unit square: nodes at random points,
/// edges between near pairs (both directions with independent weights);
/// delay is the quantized Euclidean distance, cost is inverse-distance-like
/// (long links are fast per hop but expensive — a WAN flavour).
pub fn geometric(n: usize, m_target: usize, params: WeightParams, rng: &mut impl Rng) -> DiGraph {
    assert!(n >= 2);
    let mut pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen(), rng.gen())).collect();
    // Pin the terminals to opposite corners for long routes.
    pts[0] = (0.02, 0.02);
    pts[n - 1] = (0.98, 0.98);
    // Choose a radius that roughly yields m_target directed edges.
    let density = (m_target as f64) / (n as f64 * (n - 1) as f64);
    let radius = (density / std::f64::consts::PI).sqrt().clamp(0.08, 1.5) * 2.0;
    let mut g = DiGraph::new(n);
    let maxw = params.max.max(2) as f64;
    for a in 0..n {
        for b in 0..n {
            if a == b {
                continue;
            }
            let dx = pts[a].0 - pts[b].0;
            let dy = pts[a].1 - pts[b].1;
            let dist = (dx * dx + dy * dy).sqrt();
            if dist <= radius {
                let delay = ((dist / radius) * (maxw - 1.0)).round() as i64 + 1;
                let cost = ((1.0 - dist / radius) * (maxw - 1.0)).round() as i64 + 1;
                g.add_edge(NodeId(a as u32), NodeId(b as u32), cost, delay);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;

    fn rng() -> ChaCha20Rng {
        ChaCha20Rng::seed_from_u64(99)
    }

    #[test]
    fn gnm_has_spine_and_size() {
        let g = gnm(20, 60, Regime::Uniform, WeightParams::default(), &mut rng());
        assert_eq!(g.node_count(), 20);
        assert!(g.edge_count() >= 19); // at least the spine
        assert!(g.edge_count() <= 60);
        // Terminals connected via the spine.
        assert!(krsp_flow::max_edge_disjoint_paths(&g, NodeId(0), NodeId(19)) >= 1);
    }

    #[test]
    fn grid_shape() {
        let g = grid(4, Regime::Correlated, WeightParams::default(), &mut rng());
        assert_eq!(g.node_count(), 16);
        // 2·side·(side−1) mandatory edges plus optional diagonals.
        assert!(g.edge_count() >= 24);
        assert!(krsp_flow::max_edge_disjoint_paths(&g, NodeId(0), NodeId(15)) >= 2);
    }

    #[test]
    fn layered_supports_many_disjoint_paths() {
        let g = layered(4, 3, Regime::Uniform, WeightParams::default(), &mut rng());
        let t = NodeId((g.node_count() - 1) as u32);
        assert_eq!(
            krsp_flow::max_edge_disjoint_paths(&g, NodeId(0), t),
            3 // limited by the width fan-in/out
        );
    }

    #[test]
    fn scale_free_has_degree_skew() {
        let g = scale_free(120, 3, Regime::Uniform, WeightParams::default(), &mut rng());
        assert_eq!(g.node_count(), 120);
        assert!(g.edge_count() >= 119);
        // Degree skew: the max total degree should far exceed the mean.
        let mut deg = vec![0usize; 120];
        for e in g.edges() {
            deg[e.src.index()] += 1;
            deg[e.dst.index()] += 1;
        }
        let mean = deg.iter().sum::<usize>() as f64 / 120.0;
        let max = *deg.iter().max().unwrap() as f64;
        assert!(max > 3.0 * mean, "max {max} vs mean {mean}");
        // Edges all run small→large index: the graph is a DAG and 0 can
        // reach high-index nodes.
        assert!(g.edges().iter().all(|e| e.src.0 < e.dst.0));
    }

    #[test]
    fn geometric_connects_corners() {
        let g = geometric(40, 400, WeightParams::default(), &mut rng());
        assert_eq!(g.node_count(), 40);
        assert!(g.edge_count() > 0);
        // All weights positive.
        for e in g.edges() {
            assert!(e.cost >= 1 && e.delay >= 1);
        }
    }

    #[test]
    fn family_sample_dispatch() {
        for fam in [
            Family::Gnm,
            Family::Grid,
            Family::Layered,
            Family::Geometric,
            Family::ScaleFree,
        ] {
            let g = fam.sample(25, 80, Regime::Anticorrelated, &mut rng());
            assert!(g.node_count() >= 2, "{fam:?}");
            let (s, t) = fam.terminals(g.node_count());
            assert!(s.index() < g.node_count() && t.index() < g.node_count());
        }
    }
}
