//! Instance (de)serialization — JSON on disk, schema-validated on load.

use krsp::Instance;
use std::io;
use std::path::Path;

/// Writes an instance as pretty JSON.
pub fn write_instance(path: &Path, inst: &Instance) -> io::Result<()> {
    let data = serde_json::to_string_pretty(inst).map_err(io::Error::other)?;
    std::fs::write(path, data)
}

/// Reads and validates an instance from JSON.
pub fn read_instance(path: &Path) -> io::Result<Instance> {
    let data = std::fs::read_to_string(path)?;
    let inst: Instance = serde_json::from_str(&data).map_err(io::Error::other)?;
    inst.validate()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use krsp_graph::{DiGraph, NodeId};

    #[test]
    fn round_trip() {
        let g = DiGraph::from_edges(3, &[(0, 1, 1, 2), (1, 2, 3, 4), (0, 2, 5, 6)]);
        let inst = Instance::new(g, NodeId(0), NodeId(2), 1, 10).unwrap();
        let dir = std::env::temp_dir().join("krsp-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inst.json");
        write_instance(&path, &inst).unwrap();
        let back = read_instance(&path).unwrap();
        assert_eq!(back.k, 1);
        assert_eq!(back.delay_bound, 10);
        assert_eq!(back.graph.edges(), inst.graph.edges());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn invalid_json_rejected() {
        let dir = std::env::temp_dir().join("krsp-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "{not json").unwrap();
        assert!(read_instance(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
