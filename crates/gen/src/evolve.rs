//! Topology evolution streams: deterministic weight-update sequences for
//! rolling cost updates and link-flap storms.
//!
//! Real provisioning traffic runs against a slowly mutating network; these
//! generators produce the mutation side of that workload. Every stream is
//! seeded and deterministic, mirroring the philosophy of [`crate::Workload`]:
//! the same `(graph, params, seed)` always yields the same update sequence,
//! so replay experiments and chaos tests are reproducible.

use krsp_graph::{Cost, Delay, DiGraph, EdgeId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha20Rng;

/// One edge-weight mutation: edge `edge` takes weights `(cost, delay)` at
/// the next epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WeightChange {
    /// The mutated edge.
    pub edge: EdgeId,
    /// New edge cost.
    pub cost: Cost,
    /// New edge delay.
    pub delay: Delay,
}

impl WeightChange {
    /// True when this change does not decrease either weight of `edge`
    /// relative to `graph` — the condition under which cached solutions
    /// avoiding `edge` stay certified (their recorded LP lower bound can
    /// only move up).
    #[must_use]
    pub fn is_non_decreasing(&self, graph: &DiGraph) -> bool {
        let e = graph.edge(self.edge);
        self.cost >= e.cost && self.delay >= e.delay
    }
}

/// Applies a batch of changes, returning the next-epoch graph (adjacency
/// shared with `graph` — see [`DiGraph::with_updates`]).
#[must_use]
pub fn apply(graph: &DiGraph, changes: &[WeightChange]) -> DiGraph {
    let triples: Vec<(EdgeId, Cost, Delay)> =
        changes.iter().map(|c| (c.edge, c.cost, c.delay)).collect();
    graph.with_updates(&triples)
}

/// A rolling cost-update step: `count` distinct random edges get their cost
/// scaled by `num/den` (rounded up, so the update is always non-decreasing
/// when `num ≥ den`); delays are untouched. Returns at most
/// `min(count, edge_count)` changes, in edge-id order.
#[must_use]
pub fn cost_ramp(
    graph: &DiGraph,
    count: usize,
    num: i64,
    den: i64,
    seed: u64,
) -> Vec<WeightChange> {
    assert!(num > 0 && den > 0, "scale factor must be positive");
    let m = graph.edge_count();
    let picks = pick_distinct(m, count.min(m), seed);
    picks
        .into_iter()
        .map(|i| {
            let e = graph.edge(EdgeId(i as u32));
            let scaled = (e.cost.saturating_mul(num) + den - 1) / den;
            WeightChange {
                edge: EdgeId(i as u32),
                cost: scaled.max(e.cost.min(1)),
                delay: e.delay,
            }
        })
        .collect()
}

/// A link-flap: the flapping edge's weights spike by `factor` (both cost and
/// delay — the link is effectively down), then the second element restores
/// the original weights. Apply the two halves at consecutive epochs.
#[must_use]
pub fn link_flap(graph: &DiGraph, edge: EdgeId, factor: i64) -> (WeightChange, WeightChange) {
    assert!(factor >= 1, "flap factor must be ≥ 1");
    let e = graph.edge(edge);
    let spike = WeightChange {
        edge,
        cost: e.cost.saturating_mul(factor).max(1),
        delay: e.delay.saturating_mul(factor).max(1),
    };
    let restore = WeightChange {
        edge,
        cost: e.cost,
        delay: e.delay,
    };
    (spike, restore)
}

/// A storm of `flaps` independent link-flaps on distinct random edges.
/// Returns `(spikes, restores)`; apply all spikes at one epoch and all
/// restores at the next (or interleave per-edge for a rolling storm).
#[must_use]
pub fn flap_storm(
    graph: &DiGraph,
    flaps: usize,
    factor: i64,
    seed: u64,
) -> (Vec<WeightChange>, Vec<WeightChange>) {
    let m = graph.edge_count();
    let picks = pick_distinct(m, flaps.min(m), seed);
    let mut spikes = Vec::with_capacity(picks.len());
    let mut restores = Vec::with_capacity(picks.len());
    for i in picks {
        let (s, r) = link_flap(graph, EdgeId(i as u32), factor);
        spikes.push(s);
        restores.push(r);
    }
    (spikes, restores)
}

/// `count` distinct indices in `0..m`, ascending, deterministic in `seed`.
fn pick_distinct(m: usize, count: usize, seed: u64) -> Vec<usize> {
    let mut rng = ChaCha20Rng::seed_from_u64(seed);
    let mut picked = vec![false; m];
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let i = rng.gen_range(0..m);
        if !picked[i] {
            picked[i] = true;
            out.push(i);
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> DiGraph {
        DiGraph::from_edges(4, &[(0, 1, 4, 6), (1, 3, 4, 6), (0, 2, 8, 2), (2, 3, 8, 2)])
    }

    #[test]
    fn cost_ramp_is_deterministic_and_non_decreasing() {
        let g = grid();
        let a = cost_ramp(&g, 2, 3, 2, 42);
        let b = cost_ramp(&g, 2, 3, 2, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        for c in &a {
            assert!(c.is_non_decreasing(&g), "ramp must only raise costs");
            assert_eq!(c.delay, g.edge(c.edge).delay);
        }
        let g2 = apply(&g, &a);
        assert!(g2.shares_adjacency_with(&g));
        assert_eq!(
            g2.edge(a[0].edge).cost,
            (g.edge(a[0].edge).cost * 3 + 1) / 2
        );
    }

    #[test]
    fn flap_spike_then_restore_roundtrips() {
        let g = grid();
        let (spike, restore) = link_flap(&g, EdgeId(1), 100);
        assert!(spike.is_non_decreasing(&g));
        let flapped = apply(&g, &[spike]);
        assert_eq!(flapped.edge(EdgeId(1)).cost, 400);
        assert_eq!(flapped.edge(EdgeId(1)).delay, 600);
        // Restore is a *decrease* relative to the flapped graph.
        assert!(!restore.is_non_decreasing(&flapped));
        let back = apply(&flapped, &[restore]);
        assert_eq!(back.edges(), g.edges());
    }

    #[test]
    fn storm_picks_distinct_edges() {
        let g = grid();
        let (spikes, restores) = flap_storm(&g, 3, 10, 7);
        assert_eq!(spikes.len(), 3);
        assert_eq!(restores.len(), 3);
        let mut ids: Vec<u32> = spikes.iter().map(|c| c.edge.0).collect();
        ids.dedup();
        assert_eq!(ids.len(), 3, "edges must be distinct");
    }
}
