//! The parametric hard family of the paper's Figure 1.
//!
//! Figure 1 justifies the cost cap `|c(O)| ≤ C_OPT` in Definition 10: there
//! are instances where ratio-admissible cycle cancellation *without* the
//! cap walks the solution to cost `≈ C_OPT·(D+1)` while the optimum costs
//! `C_OPT` ("the cost of the solution resulting from the algorithm could be
//! very large when α is a small number, say α = 1/D").
//!
//! Construction (`k = 2`, budget `D`): a zero-cost express edge `s→t`
//! carries the second path; the first path runs `s→a→t` where `a→t` has
//! three parallel options:
//!
//! * **slow** — cost 0, delay `D+1` (the phase-1 rounding picks it: its
//!   Lemma-5 score `α + β = (D+1)/D` beats every alternative);
//! * **good** — cost `q`, delay `D` (the optimum: `C_OPT = q`);
//! * **trap** — cost `q·D`, delay 0.
//!
//! In the residual graph the two candidate cycles are `slow→good`
//! (ratio `−1/q`) and `slow→trap` (ratio `−(D+1)/(q·D)` — *steeper*, so a
//! ratio-driven engine prefers it). Both pass Definition 10's ratio test;
//! only the cost cap rejects the trap. Without the cap the output costs
//! `q·D = D·C_OPT`; with it, `q = C_OPT`.

use krsp::Instance;
use krsp_graph::{DiGraph, NodeId};

/// Builds the Figure-1-style instance for delay bound `d_bound ≥ 2` and
/// cost unit `q ≥ 1`. `C_OPT = q`; the uncapped trap costs `q·d_bound`.
#[must_use]
pub fn fig1_instance(d_bound: i64, q: i64) -> Instance {
    assert!(d_bound >= 2 && q >= 1);
    let g = DiGraph::from_edges(
        3,
        &[
            (0, 1, 0, 0),           // e0: s→a
            (1, 2, 0, d_bound + 1), // e1: slow
            (1, 2, q, d_bound),     // e2: good (optimal)
            (1, 2, q * d_bound, 0), // e3: trap
            (0, 2, 0, 0),           // e4: express (second path)
        ],
    );
    Instance::new(g, NodeId(0), NodeId(2), 2, d_bound).expect("valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimum_is_the_good_edge() {
        for d in [2i64, 5, 10, 40] {
            let inst = fig1_instance(d, 3);
            let opt = krsp::exact::brute_force(&inst).expect("feasible");
            assert_eq!(opt.cost, 3, "D={d}");
            assert_eq!(opt.delay, d, "D={d}");
        }
    }

    #[test]
    fn phase1_starts_on_the_slow_edge() {
        let inst = fig1_instance(10, 3);
        let p1 = krsp::phase1::run(&inst, krsp::Phase1Backend::Lagrangian).unwrap();
        // The rounded pick is the (cost 0, delay D+1) solution: delay-
        // infeasible, so phase 2 must run.
        assert_eq!(p1.cost, 0);
        assert_eq!(p1.delay, 11);
    }

    #[test]
    fn capped_solver_finds_the_optimum() {
        for d in [4i64, 16, 64] {
            let inst = fig1_instance(d, 3);
            let out = krsp::solve(&inst, &krsp::Config::default()).unwrap();
            assert!(out.solution.delay <= d);
            assert!(
                out.solution.cost <= 2 * 3,
                "D={d}: cost {} escaped the cap guarantee",
                out.solution.cost
            );
        }
    }

    #[test]
    fn trap_cycle_is_ratio_steeper() {
        // Documented mechanism: ratio(slow→trap) < ratio(slow→good) < 0.
        let (d, q) = (10i64, 3i64);
        let good = (-1.0, q as f64); // Δdelay=-1, Δcost=+q
        let trap = (-(d as f64 + 1.0), (q * d) as f64);
        assert!(trap.0 / trap.1 < good.0 / good.1);
    }
}
