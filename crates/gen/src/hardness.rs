//! The NP-hardness gadget family.
//!
//! kRSP is NP-hard (the paper cites [16]; the standard argument embeds
//! PARTITION into a chain of two-edge choice gadgets even for `k = 1`).
//! This generator materializes that reduction: given items `a_1..a_n`, a
//! chain of gadgets where step `i` chooses between an edge with
//! `(cost, delay) = (a_i, 0)` and one with `(0, a_i)`. A path with total
//! delay ≤ S and total cost ≤ S (where `S = Σa/2`) exists iff the items
//! can be split evenly.
//!
//! These instances are the stress workload for the exact solvers and show
//! where the approximation genuinely earns its keep: the LP bound is loose
//! and phase 2 must work.

use krsp::Instance;
use krsp_graph::{DiGraph, NodeId};

/// Builds the PARTITION chain for `items`, with delay budget `Σ/2` and a
/// parallel "escape" path so that `k = 2` instances stay structurally
/// feasible. Returns `None` for empty input or odd total.
#[must_use]
pub fn partition_chain(items: &[i64], k: usize) -> Option<Instance> {
    if items.is_empty() || items.iter().any(|&a| a <= 0) {
        return None;
    }
    let total: i64 = items.iter().sum();
    if total % 2 != 0 {
        return None;
    }
    let half = total / 2;
    let n = items.len();
    // Chain nodes 0..=n, plus an escape spine for the second path.
    let mut g = DiGraph::new(n + 1 + if k >= 2 { 1 } else { 0 });
    for (i, &a) in items.iter().enumerate() {
        let u = NodeId(i as u32);
        let v = NodeId((i + 1) as u32);
        g.add_edge(u, v, a, 0); // "put item on the cost side"
        g.add_edge(u, v, 0, a); // "put item on the delay side"
    }
    let s = NodeId(0);
    let t = NodeId(n as u32);
    if k >= 2 {
        // Escape route s→x→t carrying the extra paths without interacting
        // with the gadget (zero weights; parallel copies for k > 2).
        let x = NodeId((n + 1) as u32);
        for _ in 0..(k - 1) {
            g.add_edge(s, x, 0, 0);
            g.add_edge(x, t, 0, 0);
        }
    }
    Instance::new(g, s, t, k, half).ok()
}

/// The certificate question: does this instance admit a solution with cost
/// ≤ `Σ/2` too? (Equivalent to the PARTITION instance being a yes-instance;
/// decided here with the exact solver — exponential, test sizes only.)
#[must_use]
pub fn has_even_split(items: &[i64]) -> Option<bool> {
    let inst = partition_chain(items, 1)?;
    let half: i64 = items.iter().sum::<i64>() / 2;
    krsp::exact::brute_force(&inst).map(|opt| opt.cost <= half)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yes_instances_split() {
        assert_eq!(has_even_split(&[1, 1, 2, 2]), Some(true)); // {1,2}/{1,2}
        assert_eq!(has_even_split(&[3, 3]), Some(true));
        assert_eq!(has_even_split(&[1, 2, 3]), Some(true)); // {1,2}/{3}
        assert_eq!(has_even_split(&[1, 5, 6, 4, 2]), Some(true)); // {5,4}/{1,6,2}
    }

    #[test]
    fn no_instances_cannot() {
        assert_eq!(has_even_split(&[2, 4]), Some(false));
        assert_eq!(has_even_split(&[2, 2, 8]), Some(false));
        // All-even items with an odd half-sum can never split evenly.
        assert_eq!(has_even_split(&[2, 4, 6, 4, 2]), Some(false));
    }

    #[test]
    fn odd_totals_rejected() {
        assert_eq!(partition_chain(&[1, 2], 1).map(|_| ()), None);
        assert_eq!(has_even_split(&[3]), None);
    }

    #[test]
    fn k2_keeps_structural_feasibility() {
        let inst = partition_chain(&[1, 1, 2, 2], 2).unwrap();
        assert!(inst.is_structurally_feasible());
        // The escape path is free, so the optimum equals the k=1 optimum.
        let opt = krsp::exact::brute_force(&inst).unwrap();
        assert_eq!(opt.cost, 3);
    }

    #[test]
    fn approximation_stays_within_two_on_gadgets() {
        // The guarantee must hold even on the reduction instances.
        for items in [
            &[1i64, 1, 2, 2][..],
            &[2, 4, 6, 4, 2][..],
            &[3, 5, 2, 4][..],
        ] {
            let Some(inst) = partition_chain(items, 1) else {
                continue;
            };
            let Some(opt) = krsp::exact::brute_force(&inst) else {
                continue; // delay budget unsatisfiable
            };
            let out = krsp::solve(&inst, &krsp::Config::default()).unwrap();
            assert!(out.solution.delay <= inst.delay_bound);
            assert!(
                out.solution.cost <= 2 * opt.cost,
                "items {items:?}: {} > 2·{}",
                out.solution.cost,
                opt.cost
            );
        }
    }
}
