//! Two-phase primal simplex over exact rationals.
//!
//! Dense tableau implementation with **Bland's anti-cycling rule**: entering
//! variable = lowest-index negative reduced cost; leaving variable =
//! lowest-index among minimum-ratio rows. With exact arithmetic this
//! guarantees finite termination at a true optimal vertex.

use crate::model::{Model, Relation};
use krsp_numeric::Rat;

/// An optimal LP solution.
#[derive(Clone, Debug)]
pub struct LpSolution {
    /// Optimal objective value.
    pub objective: Rat,
    /// Value of every model variable (original, unshifted space).
    pub values: Vec<Rat>,
}

/// Result of solving a model.
#[derive(Clone, Debug)]
pub enum LpOutcome {
    /// An optimal basic solution was found.
    Optimal(LpSolution),
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
}

impl LpOutcome {
    /// Unwraps the optimal solution; panics otherwise.
    #[must_use]
    pub fn expect_optimal(self, msg: &str) -> LpSolution {
        match self {
            LpOutcome::Optimal(s) => s,
            other => panic!("{msg}: {other:?}"),
        }
    }

    /// The optimal solution, if any.
    #[must_use]
    pub fn optimal(self) -> Option<LpSolution> {
        match self {
            LpOutcome::Optimal(s) => Some(s),
            _ => None,
        }
    }
}

/// Internal standard-form tableau.
struct Tableau {
    /// `rows × (cols + 1)`; last column is the RHS.
    a: Vec<Vec<Rat>>,
    /// Objective row (reduced costs) of length `cols + 1`; last entry is
    /// `−objective_value`.
    z: Vec<Rat>,
    /// Basic column of each row.
    basis: Vec<usize>,
    cols: usize,
}

impl Tableau {
    fn pivot(&mut self, row: usize, col: usize) {
        let piv = self.a[row][col];
        debug_assert!(piv.is_positive(), "pivot must be positive");
        let inv = piv.recip();
        for x in &mut self.a[row] {
            *x *= inv;
        }
        for r in 0..self.a.len() {
            if r != row && !self.a[r][col].is_zero() {
                let factor = self.a[r][col];
                for c in 0..=self.cols {
                    let delta = factor * self.a[row][c];
                    self.a[r][c] -= delta;
                }
            }
        }
        if !self.z[col].is_zero() {
            let factor = self.z[col];
            for c in 0..=self.cols {
                let delta = factor * self.a[row][c];
                self.z[c] -= delta;
            }
        }
        self.basis[row] = col;
    }

    /// Runs Bland-rule simplex on the current objective row.
    /// Returns `false` if unbounded.
    fn run(&mut self) -> bool {
        loop {
            // Entering: smallest column index with negative reduced cost.
            let Some(col) = (0..self.cols).find(|&c| self.z[c].is_negative()) else {
                return true; // optimal
            };
            // Leaving: min ratio rhs / a[r][col] over a[r][col] > 0,
            // ties broken by smallest basic variable index (Bland).
            let mut best: Option<(usize, Rat)> = None;
            for r in 0..self.a.len() {
                let coef = self.a[r][col];
                if coef.is_positive() {
                    let ratio = self.a[r][self.cols] / coef;
                    let better = match &best {
                        None => true,
                        Some((br, bratio)) => {
                            ratio < *bratio || (ratio == *bratio && self.basis[r] < self.basis[*br])
                        }
                    };
                    if better {
                        best = Some((r, ratio));
                    }
                }
            }
            let Some((row, _)) = best else {
                return false; // unbounded
            };
            self.pivot(row, col);
        }
    }
}

/// Solves `model` (minimization) exactly. See [`LpOutcome`].
#[must_use]
pub fn solve(model: &Model) -> LpOutcome {
    // Fault-injection site (see crates/failpoint): `err` reports the model
    // as infeasible, which exercises every caller's no-LP-solution path.
    krsp_failpoint::fail_point!("lp.simplex", |_msg| LpOutcome::Infeasible);
    let n = model.num_vars();

    // Shift variables to x = lo + x', x' >= 0, and lower upper bounds into
    // explicit rows.
    #[derive(Clone)]
    struct Row {
        terms: Vec<(usize, Rat)>,
        rel: Relation,
        rhs: Rat,
    }
    let mut rows: Vec<Row> = Vec::with_capacity(model.num_constraints());
    for c in model.constraints() {
        let mut shift = Rat::ZERO;
        let mut terms: Vec<(usize, Rat)> = Vec::with_capacity(c.terms.len());
        for &(v, coef) in &c.terms {
            shift += coef * model.lower_of(v);
            // Merge duplicates.
            if let Some(slot) = terms.iter_mut().find(|(i, _)| *i == v.0) {
                slot.1 += coef;
            } else {
                terms.push((v.0, coef));
            }
        }
        rows.push(Row {
            terms,
            rel: c.rel,
            rhs: c.rhs - shift,
        });
    }
    for v in 0..n {
        if let Some(hi) = model.upper_of(crate::model::VarId(v)) {
            rows.push(Row {
                terms: vec![(v, Rat::ONE)],
                rel: Relation::Le,
                rhs: hi - model.lower_of(crate::model::VarId(v)),
            });
        }
    }

    // Normalize RHS >= 0.
    for r in &mut rows {
        if r.rhs.is_negative() {
            for t in &mut r.terms {
                t.1 = -t.1;
            }
            r.rhs = -r.rhs;
            r.rel = match r.rel {
                Relation::Le => Relation::Ge,
                Relation::Eq => Relation::Eq,
                Relation::Ge => Relation::Le,
            };
        }
    }

    let m = rows.len();
    // Column layout: [structural n][slack/surplus S][artificial A][rhs].
    let num_slack = rows
        .iter()
        .filter(|r| !matches!(r.rel, Relation::Eq))
        .count();
    let num_art = rows
        .iter()
        .filter(|r| !matches!(r.rel, Relation::Le))
        .count();
    let cols = n + num_slack + num_art;

    let mut a = vec![vec![Rat::ZERO; cols + 1]; m];
    let mut basis = vec![usize::MAX; m];
    let mut art_cols: Vec<usize> = Vec::with_capacity(num_art);
    let mut next_slack = n;
    let mut next_art = n + num_slack;
    for (i, r) in rows.iter().enumerate() {
        for &(v, coef) in &r.terms {
            a[i][v] += coef;
        }
        a[i][cols] = r.rhs;
        match r.rel {
            Relation::Le => {
                a[i][next_slack] = Rat::ONE;
                basis[i] = next_slack;
                next_slack += 1;
            }
            Relation::Ge => {
                a[i][next_slack] = -Rat::ONE;
                next_slack += 1;
                a[i][next_art] = Rat::ONE;
                basis[i] = next_art;
                art_cols.push(next_art);
                next_art += 1;
            }
            Relation::Eq => {
                a[i][next_art] = Rat::ONE;
                basis[i] = next_art;
                art_cols.push(next_art);
                next_art += 1;
            }
        }
    }

    let mut t = Tableau {
        a,
        z: vec![Rat::ZERO; cols + 1],
        basis,
        cols,
    };

    // ---- Phase 1: minimize sum of artificials. ----
    if num_art > 0 {
        for &c in &art_cols {
            t.z[c] = Rat::ONE;
        }
        // Price out basic artificials.
        for r in 0..m {
            if art_cols.contains(&t.basis[r]) {
                let row = t.a[r].clone();
                #[allow(clippy::needless_range_loop)] // z and row indexed in lockstep
                for c in 0..=t.cols {
                    t.z[c] -= row[c];
                }
            }
        }
        let bounded = t.run();
        debug_assert!(bounded, "phase-1 objective is bounded by construction");
        let phase1_obj = -t.z[t.cols];
        if phase1_obj > Rat::ZERO {
            return LpOutcome::Infeasible;
        }
        // Drive remaining artificials out of the basis.
        for r in 0..m {
            if art_cols.contains(&t.basis[r]) {
                if let Some(c) = (0..n + num_slack).find(|&c| !t.a[r][c].is_zero()) {
                    // Pivot needs positive coefficient; negate row first if
                    // necessary (RHS is 0 here, so sign flip is safe).
                    if t.a[r][c].is_negative() {
                        for x in &mut t.a[r] {
                            *x = -*x;
                        }
                    }
                    t.pivot(r, c);
                }
                // else: redundant row; the artificial stays basic at value 0.
            }
        }
        // Forbid artificials from re-entering.
        for r in 0..m {
            if !art_cols.contains(&t.basis[r]) {
                for &c in &art_cols {
                    t.a[r][c] = Rat::ZERO;
                }
            }
        }
    }

    // ---- Phase 2: original objective. ----
    t.z = vec![Rat::ZERO; cols + 1];
    for v in 0..n {
        t.z[v] = model.objective_of(crate::model::VarId(v));
    }
    for &c in &art_cols {
        // Large positive cost keeps artificials out (they are zero and
        // blocked anyway; this guards the redundant-row case).
        t.z[c] = Rat::ZERO;
    }
    // Price out the basic variables.
    for r in 0..m {
        let b = t.basis[r];
        if !t.z[b].is_zero() {
            let factor = t.z[b];
            let row = t.a[r].clone();
            #[allow(clippy::needless_range_loop)] // z and row indexed in lockstep
            for c in 0..=t.cols {
                let delta = factor * row[c];
                t.z[c] -= delta;
            }
        }
    }
    // Never let artificial columns enter in phase 2.
    for &c in &art_cols {
        if t.z[c].is_negative() {
            t.z[c] = Rat::ZERO;
        }
    }
    if !t.run() {
        return LpOutcome::Unbounded;
    }

    // Extract shifted values, then unshift.
    let mut xp = vec![Rat::ZERO; cols];
    for r in 0..m {
        xp[t.basis[r]] = t.a[r][t.cols];
    }
    let values: Vec<Rat> = (0..n)
        .map(|v| model.lower_of(crate::model::VarId(v)) + xp[v])
        .collect();
    let objective = model.objective_value(&values);
    debug_assert!(
        model.is_feasible(&values),
        "simplex returned an infeasible point"
    );
    LpOutcome::Optimal(LpSolution { objective, values })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Relation, VarId};

    fn r(n: i128) -> Rat {
        Rat::int(n)
    }

    #[test]
    fn simple_2d_optimum() {
        // min -x - 2y  s.t. x + y <= 4, x <= 2, y <= 3, x,y >= 0.
        // Optimum at (1, 3): objective -7.
        let mut m = Model::new();
        let x = m.add_var(r(-1));
        let y = m.add_var(r(-2));
        m.add_constraint(vec![(x, r(1)), (y, r(1))], Relation::Le, r(4));
        m.add_constraint(vec![(x, r(1))], Relation::Le, r(2));
        m.add_constraint(vec![(y, r(1))], Relation::Le, r(3));
        let sol = solve(&m).expect_optimal("solvable");
        assert_eq!(sol.objective, r(-7));
        assert_eq!(sol.values, vec![r(1), r(3)]);
    }

    #[test]
    fn equality_and_ge_constraints() {
        // min x + y  s.t. x + y = 10, x >= 3, y >= 2 → multiple optima, obj 10.
        let mut m = Model::new();
        let x = m.add_var(r(1));
        let y = m.add_var(r(1));
        m.add_constraint(vec![(x, r(1)), (y, r(1))], Relation::Eq, r(10));
        m.add_constraint(vec![(x, r(1))], Relation::Ge, r(3));
        m.add_constraint(vec![(y, r(1))], Relation::Ge, r(2));
        let sol = solve(&m).expect_optimal("solvable");
        assert_eq!(sol.objective, r(10));
        assert!(m.is_feasible(&sol.values));
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new();
        let x = m.add_var(r(1));
        m.add_constraint(vec![(x, r(1))], Relation::Ge, r(5));
        m.add_constraint(vec![(x, r(1))], Relation::Le, r(3));
        assert!(matches!(solve(&m), LpOutcome::Infeasible));
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new();
        let x = m.add_var(r(-1));
        let y = m.add_var(r(0));
        m.add_constraint(vec![(x, r(1)), (y, r(-1))], Relation::Le, r(1));
        assert!(matches!(solve(&m), LpOutcome::Unbounded));
    }

    #[test]
    fn bounds_shift_and_cap() {
        // min x  s.t. x in [2, 7], x >= 0 → optimum 2.
        let mut m = Model::new();
        let _x = m.add_var_bounded(r(1), r(2), Some(r(7)));
        let sol = solve(&m).expect_optimal("solvable");
        assert_eq!(sol.objective, r(2));
        // max (via min -x) hits the upper bound.
        let mut m2 = Model::new();
        let _x = m2.add_var_bounded(r(-1), r(2), Some(r(7)));
        let sol2 = solve(&m2).expect_optimal("solvable");
        assert_eq!(sol2.values[0], r(7));
    }

    #[test]
    fn negative_rhs_normalization() {
        // min x  s.t. -x <= -4 (i.e. x >= 4).
        let mut m = Model::new();
        let x = m.add_var(r(1));
        m.add_constraint(vec![(x, r(-1))], Relation::Le, r(-4));
        let sol = solve(&m).expect_optimal("solvable");
        assert_eq!(sol.objective, r(4));
    }

    #[test]
    fn fractional_optimum_exact() {
        // min -x - y  s.t. 2x + y <= 3, x + 2y <= 3 → optimum (1,1)... use
        // an asymmetric variant to force a fractional vertex:
        // min -3x - 2y s.t. 2x + y <= 2, x + 3y <= 3 → vertex x=3/5, y=4/5.
        let mut m = Model::new();
        let x = m.add_var(r(-3));
        let y = m.add_var(r(-2));
        m.add_constraint(vec![(x, r(2)), (y, r(1))], Relation::Le, r(2));
        m.add_constraint(vec![(x, r(1)), (y, r(3))], Relation::Le, r(3));
        let sol = solve(&m).expect_optimal("solvable");
        assert_eq!(sol.values, vec![Rat::new(3, 5), Rat::new(4, 5)]);
        assert_eq!(sol.objective, Rat::new(-17, 5));
    }

    #[test]
    fn redundant_equality_rows() {
        // x + y = 2 stated twice; still solvable.
        let mut m = Model::new();
        let x = m.add_var(r(1));
        let y = m.add_var(r(2));
        m.add_constraint(vec![(x, r(1)), (y, r(1))], Relation::Eq, r(2));
        m.add_constraint(vec![(x, r(1)), (y, r(1))], Relation::Eq, r(2));
        let sol = solve(&m).expect_optimal("solvable");
        assert_eq!(sol.objective, r(2)); // all mass on x
        assert_eq!(sol.values, vec![r(2), r(0)]);
    }

    #[test]
    fn degenerate_does_not_cycle() {
        // Classic degenerate LP (Beale-like); Bland must terminate.
        let mut m = Model::new();
        let x1 = m.add_var(Rat::new(-3, 4));
        let x2 = m.add_var(r(150));
        let x3 = m.add_var(Rat::new(-1, 50));
        let x4 = m.add_var(r(6));
        m.add_constraint(
            vec![
                (x1, Rat::new(1, 4)),
                (x2, r(-60)),
                (x3, Rat::new(-1, 25)),
                (x4, r(9)),
            ],
            Relation::Le,
            r(0),
        );
        m.add_constraint(
            vec![
                (x1, Rat::new(1, 2)),
                (x2, r(-90)),
                (x3, Rat::new(-1, 50)),
                (x4, r(3)),
            ],
            Relation::Le,
            r(0),
        );
        m.add_constraint(vec![(x3, r(1))], Relation::Le, r(1));
        let sol = solve(&m).expect_optimal("solvable");
        assert_eq!(sol.objective, Rat::new(-1, 20));
    }

    #[test]
    fn flow_lp_shortest_path() {
        // Min-cost unit flow on a diamond: s=0, t=3; edges (0,1,c1),(1,3,c1),
        // (0,2,c4),(2,3,c4). LP optimum = cheaper path, integral vertex.
        let mut m = Model::new();
        let e: Vec<VarId> = [1, 1, 4, 4]
            .iter()
            .map(|&c| m.add_var_bounded(r(c), r(0), Some(r(1))))
            .collect();
        // Conservation: node0 out - in = 1; node1 = 0; node2 = 0; node3 = -1.
        m.add_constraint(vec![(e[0], r(1)), (e[2], r(1))], Relation::Eq, r(1));
        m.add_constraint(vec![(e[0], r(-1)), (e[1], r(1))], Relation::Eq, r(0));
        m.add_constraint(vec![(e[2], r(-1)), (e[3], r(1))], Relation::Eq, r(0));
        m.add_constraint(vec![(e[1], r(-1)), (e[3], r(-1))], Relation::Eq, r(-1));
        let sol = solve(&m).expect_optimal("solvable");
        assert_eq!(sol.objective, r(2));
        assert_eq!(sol.values, vec![r(1), r(1), r(0), r(0)]);
    }

    /// Oracle for 2-variable LPs: enumerate all candidate vertices
    /// (pairwise constraint intersections, including the axes), keep the
    /// feasible ones, take the best objective.
    fn two_var_oracle(m: &Model) -> Option<Rat> {
        // Collect constraint lines a·x + b·y = c (axes included).
        let mut lines: Vec<(Rat, Rat, Rat)> = vec![
            (Rat::ONE, Rat::ZERO, Rat::ZERO), // x = 0
            (Rat::ZERO, Rat::ONE, Rat::ZERO), // y = 0
        ];
        for c in m.constraints() {
            let mut a = Rat::ZERO;
            let mut b = Rat::ZERO;
            for &(v, coef) in &c.terms {
                if v.0 == 0 {
                    a += coef;
                } else {
                    b += coef;
                }
            }
            lines.push((a, b, c.rhs));
        }
        let mut best: Option<Rat> = None;
        for i in 0..lines.len() {
            for j in i + 1..lines.len() {
                let (a1, b1, c1) = lines[i];
                let (a2, b2, c2) = lines[j];
                let det = a1 * b2 - a2 * b1;
                if det.is_zero() {
                    continue;
                }
                let x = (c1 * b2 - c2 * b1) / det;
                let y = (a1 * c2 - a2 * c1) / det;
                let point = [x, y];
                if m.is_feasible(&point) {
                    let obj = m.objective_value(&point);
                    best = Some(best.map_or(obj, |b: Rat| b.min(obj)));
                }
            }
        }
        best
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(128))]
        /// Simplex matches brute-force vertex enumeration on random bounded
        /// 2-variable LPs.
        #[test]
        fn prop_matches_vertex_enumeration(
            obj in (-5i128..=5, -5i128..=5),
            rows in proptest::collection::vec((0i128..=4, 0i128..=4, 1i128..=12), 1..5),
        ) {
            let mut m = Model::new();
            let x = m.add_var(Rat::int(obj.0));
            let y = m.add_var(Rat::int(obj.1));
            // All ≤-rows with nonnegative coefficients and positive rhs,
            // plus a box, keep the LP feasible (origin) and bounded.
            for &(a, b, c) in &rows {
                m.add_constraint(
                    vec![(x, Rat::int(a)), (y, Rat::int(b))],
                    Relation::Le,
                    Rat::int(c),
                );
            }
            m.add_constraint(vec![(x, Rat::ONE)], Relation::Le, Rat::int(10));
            m.add_constraint(vec![(y, Rat::ONE)], Relation::Le, Rat::int(10));
            let sol = solve(&m).expect_optimal("feasible and bounded");
            let oracle = two_var_oracle(&m).expect("origin is feasible");
            proptest::prop_assert_eq!(sol.objective, oracle);
        }
    }

    #[test]
    fn free_direction_with_equalities_bounded() {
        // Equalities pin everything; ensure artificial handling is clean.
        let mut m = Model::new();
        let x = m.add_var(r(0));
        let y = m.add_var(r(1));
        m.add_constraint(vec![(x, r(1)), (y, r(-1))], Relation::Eq, r(0));
        m.add_constraint(vec![(x, r(1)), (y, r(1))], Relation::Eq, r(4));
        let sol = solve(&m).expect_optimal("solvable");
        assert_eq!(sol.values, vec![r(2), r(2)]);
    }
}
