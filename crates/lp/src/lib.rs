//! Exact rational linear programming for the `krsp` suite.
//!
//! The paper assumes a polynomial-time LP solver as a black box (it cites
//! interior-point complexity `O(n^{3.5} L)` from Korte–Vygen for LP (6) and
//! the phase-1 flow LP). We implement the solver from scratch:
//!
//! * [`Model`] — a small modelling layer (variables with bounds, linear
//!   constraints, minimization objective) over exact rationals [`Rat`].
//! * [`solve`] — dense two-phase primal simplex with **Bland's rule**
//!   (guaranteed termination, no cycling) over exact rationals (no floating
//!   point anywhere, so "optimal" means optimal).
//!
//! Simplex returns an optimal *basic* solution — a vertex of the feasible
//! polytope — which is exactly what the rounding arguments of the paper
//! (Lemma 5, Lemma 14) require.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod model;
pub mod simplex;

pub use krsp_numeric::Rat;
pub use model::{Constraint, Model, Relation, VarId};
pub use simplex::{solve, LpOutcome, LpSolution};
