//! LP modelling layer.

use krsp_numeric::Rat;

/// Identifier of an LP variable, dense in `0..model.num_vars()`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub usize);

/// Relation of a linear constraint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Relation {
    /// `expr ≤ rhs`
    Le,
    /// `expr = rhs`
    Eq,
    /// `expr ≥ rhs`
    Ge,
}

/// One linear constraint `Σ coeff·var  rel  rhs`.
#[derive(Clone, Debug)]
pub struct Constraint {
    /// Sparse left-hand side.
    pub terms: Vec<(VarId, Rat)>,
    /// Relation.
    pub rel: Relation,
    /// Right-hand side.
    pub rhs: Rat,
}

/// A minimization LP over nonnegative-by-default variables.
///
/// Variables carry a lower bound (default `0`) and an optional upper bound.
/// Upper bounds are lowered into explicit `≤` rows by the solver; lower
/// bounds are handled by shifting.
#[derive(Clone, Debug, Default)]
pub struct Model {
    objective: Vec<Rat>,
    lower: Vec<Rat>,
    upper: Vec<Option<Rat>>,
    constraints: Vec<Constraint>,
}

impl Model {
    /// A fresh empty model.
    #[must_use]
    pub fn new() -> Self {
        Model::default()
    }

    /// Adds a variable with objective coefficient `obj`, bounds `[0, ∞)`.
    pub fn add_var(&mut self, obj: Rat) -> VarId {
        self.objective.push(obj);
        self.lower.push(Rat::ZERO);
        self.upper.push(None);
        VarId(self.objective.len() - 1)
    }

    /// Adds a variable with explicit bounds `[lo, hi]` (`hi = None` = +∞).
    pub fn add_var_bounded(&mut self, obj: Rat, lo: Rat, hi: Option<Rat>) -> VarId {
        if let Some(h) = hi {
            assert!(lo <= h, "variable bounds crossed");
        }
        self.objective.push(obj);
        self.lower.push(lo);
        self.upper.push(hi);
        VarId(self.objective.len() - 1)
    }

    /// Adds constraint `Σ terms rel rhs`. Terms may repeat a variable; they
    /// are summed.
    pub fn add_constraint(&mut self, terms: Vec<(VarId, Rat)>, rel: Relation, rhs: Rat) {
        for &(v, _) in &terms {
            assert!(v.0 < self.objective.len(), "constraint uses unknown var");
        }
        self.constraints.push(Constraint { terms, rel, rhs });
    }

    /// Number of variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of explicit constraints.
    #[must_use]
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Objective coefficient of `v`.
    #[must_use]
    pub fn objective_of(&self, v: VarId) -> Rat {
        self.objective[v.0]
    }

    /// Lower bound of `v`.
    #[must_use]
    pub fn lower_of(&self, v: VarId) -> Rat {
        self.lower[v.0]
    }

    /// Upper bound of `v` (`None` = +∞).
    #[must_use]
    pub fn upper_of(&self, v: VarId) -> Option<Rat> {
        self.upper[v.0]
    }

    /// The constraint rows.
    #[must_use]
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Evaluates the objective at a point.
    #[must_use]
    pub fn objective_value(&self, x: &[Rat]) -> Rat {
        self.objective
            .iter()
            .zip(x)
            .fold(Rat::ZERO, |acc, (&c, &v)| acc + c * v)
    }

    /// True iff `x` satisfies all bounds and constraints exactly.
    #[must_use]
    pub fn is_feasible(&self, x: &[Rat]) -> bool {
        if x.len() != self.num_vars() {
            return false;
        }
        for (i, &xi) in x.iter().enumerate() {
            if xi < self.lower[i] {
                return false;
            }
            if let Some(hi) = self.upper[i] {
                if xi > hi {
                    return false;
                }
            }
        }
        self.constraints.iter().all(|c| {
            let lhs = c
                .terms
                .iter()
                .fold(Rat::ZERO, |acc, &(v, coef)| acc + coef * x[v.0]);
            match c.rel {
                Relation::Le => lhs <= c.rhs,
                Relation::Eq => lhs == c.rhs,
                Relation::Ge => lhs >= c.rhs,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_inspect() {
        let mut m = Model::new();
        let x = m.add_var(Rat::int(3));
        let y = m.add_var_bounded(Rat::int(-1), Rat::int(1), Some(Rat::int(4)));
        m.add_constraint(
            vec![(x, Rat::ONE), (y, Rat::int(2))],
            Relation::Le,
            Rat::int(10),
        );
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_constraints(), 1);
        assert_eq!(m.objective_of(y), Rat::int(-1));
        assert_eq!(m.lower_of(y), Rat::int(1));
        assert_eq!(m.upper_of(x), None);
    }

    #[test]
    fn feasibility_checks() {
        let mut m = Model::new();
        let x = m.add_var(Rat::ONE);
        let y = m.add_var_bounded(Rat::ONE, Rat::ZERO, Some(Rat::int(2)));
        m.add_constraint(
            vec![(x, Rat::ONE), (y, Rat::ONE)],
            Relation::Ge,
            Rat::int(1),
        );
        assert!(m.is_feasible(&[Rat::ONE, Rat::ZERO]));
        assert!(!m.is_feasible(&[Rat::ZERO, Rat::ZERO])); // violates Ge
        assert!(!m.is_feasible(&[Rat::ZERO, Rat::int(3)])); // violates upper
        assert!(!m.is_feasible(&[Rat::int(-1), Rat::int(2)])); // violates lower
        assert!(!m.is_feasible(&[Rat::ONE])); // wrong arity
        assert_eq!(m.objective_value(&[Rat::int(2), Rat::int(5)]), Rat::int(7));
    }

    #[test]
    #[should_panic(expected = "unknown var")]
    fn unknown_var_panics() {
        let mut m = Model::new();
        m.add_constraint(vec![(VarId(0), Rat::ONE)], Relation::Eq, Rat::ZERO);
    }
}
